"""Capacity-upgrade orchestration and its latency breakdown (Figure 17).

A complete upgrade runs: (optional) operator-to-Master spectrum-sharing
exchange, CP solving (measured live on this machine), configuration
distribution over the backhaul (modelled), and gateway reboots
(modelled, executed in parallel across gateways so the term is the max,
not the sum).

Degraded mode: when the Master is unreachable (retry budget exhausted)
and an :class:`~repro.faults.cache.AssignmentCache` holds the
operator's last-known assignment, the upgrade proceeds on the cached
channel plan instead of crashing — ``LatencyBreakdown.degraded`` flags
the run so operators can re-sync once the Master returns.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults.cache import AssignmentCache
from ..faults.retry import MasterUnavailableError
from ..obs import runtime as _obs
from ..obs.events import EventType
from ..obs.profiling import span
from ..phy.channels import Channel
from ..sim.scenario import Network
from .agents import GatewayAgent, distribution_latency_s
from .intra_planner import IntraNetworkPlanner, PlanOutcome
from .master_client import MasterClient
from .protocol import ProtocolError

logger = logging.getLogger(__name__)

__all__ = ["LatencyBreakdown", "run_capacity_upgrade"]


@dataclass
class LatencyBreakdown:
    """Per-segment latency of one capacity upgrade."""

    cp_solving_s: float = 0.0
    master_comm_s: float = 0.0
    distribution_s: float = 0.0
    reboot_s: float = 0.0
    # True when the Master was unreachable and the upgrade ran on the
    # cached last-known assignment instead.
    degraded: bool = False

    @property
    def total_s(self) -> float:
        """End-to-end suspension time (reboots run in parallel)."""
        return (
            self.cp_solving_s
            + self.master_comm_s
            + self.distribution_s
            + self.reboot_s
        )


def run_capacity_upgrade(
    planner: IntraNetworkPlanner,
    master_client: Optional[MasterClient] = None,
    operator: Optional[str] = None,
    agent_seed: int = 0,
    assignment_cache: Optional[AssignmentCache] = None,
) -> Tuple[PlanOutcome, LatencyBreakdown]:
    """Execute a full capacity upgrade for one network.

    Args:
        planner: Intra-network planner for this operator (already
            pointed at the spectrum to use; when a Master client is
            given, its assignment overrides the planner's channels).
        master_client: Optional connection to the AlphaWAN Master for
            spectrum sharing.
        operator: Operator name for Master registration (required when
            ``master_client`` is given).
        agent_seed: Seed for the modelled gateway-agent latencies.
        assignment_cache: Optional last-known-assignment cache.  A
            fresh assignment is stored into it; when the Master is
            unreachable the cached one is served instead and the
            breakdown is flagged ``degraded``.

    Returns:
        The planning outcome and the latency breakdown.

    Raises:
        MasterUnavailableError (or the transport error): the Master was
            unreachable and no cached assignment exists to fall back to.
    """
    latency = LatencyBreakdown()

    with span("upgrade"):
        if master_client is not None:
            if not operator:
                raise ValueError("operator name required for spectrum sharing")
            t0 = time.perf_counter()
            with span("upgrade.master_sync"):
                try:
                    assignment = master_client.register(operator)
                except (MasterUnavailableError, ProtocolError, OSError):
                    cached = (
                        assignment_cache.get(operator)
                        if assignment_cache is not None
                        else None
                    )
                    if cached is None:
                        raise
                    assignment = cached
                    latency.degraded = True
                    logger.warning(
                        "master unreachable; upgrading %r on the cached "
                        "assignment",
                        operator,
                    )
            latency.master_comm_s = time.perf_counter() - t0
            if assignment_cache is not None and not latency.degraded:
                assignment_cache.store(assignment)
            planner.channels = assignment.channels()

        with span("upgrade.cp_solve"):
            outcome = planner.plan()
        latency.cp_solving_s = outcome.solve_time_s

        network: Network = planner.network
        with span("upgrade.distribute"):
            configs: List[List[Channel]] = [
                outcome.solution.gateway_channels(outcome.cp_input, j)
                for j in range(len(network.gateways))
            ]
            latency.distribution_s = distribution_latency_s(configs)

        with span("upgrade.reboot"):
            reboot_times = []
            for gw, channels in zip(network.gateways, configs):
                agent = GatewayAgent(gateway=gw, seed=agent_seed)
                reboot_times.append(agent.apply_config(channels))
            latency.reboot_s = max(reboot_times) if reboot_times else 0.0

        if planner.config.optimize_nodes:
            for i, dev in enumerate(network.devices):
                ch = outcome.cp_input.channels[outcome.solution.node_channels[i]]
                tier = outcome.cp_input.tiers[outcome.solution.node_tiers[i]]
                dev.apply_config(
                    channel=ch, dr=tier.dr, tx_power_dbm=tier.tx_power_dbm
                )

    rec = _obs.TRACE
    if rec is not None:
        # Distribution and reboot terms are modelled (deterministic);
        # CP solving and Master comm are live wall-clock measurements,
        # so they ride in strippable ``*wall_s`` fields.
        rec.emit(
            EventType.UPGRADE_DONE,
            degraded=latency.degraded,
            distribution_s=latency.distribution_s,
            reboot_s=latency.reboot_s,
            cp_solving_wall_s=latency.cp_solving_s,
            master_comm_wall_s=latency.master_comm_s,
        )
    logger.info(
        "capacity upgrade done: total %.3fs (degraded=%s)",
        latency.total_s,
        latency.degraded,
    )
    return outcome, latency
