"""Capacity-upgrade orchestration and its latency breakdown (Figure 17).

A complete upgrade runs: (optional) operator-to-Master spectrum-sharing
exchange, CP solving (measured live on this machine), configuration
distribution over the backhaul (modelled), and gateway reboots
(modelled, executed in parallel across gateways so the term is the max,
not the sum).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..phy.channels import Channel
from ..sim.scenario import Network
from .agents import GatewayAgent, distribution_latency_s
from .intra_planner import IntraNetworkPlanner, PlanOutcome
from .master_client import MasterClient

__all__ = ["LatencyBreakdown", "run_capacity_upgrade"]


@dataclass
class LatencyBreakdown:
    """Per-segment latency of one capacity upgrade."""

    cp_solving_s: float = 0.0
    master_comm_s: float = 0.0
    distribution_s: float = 0.0
    reboot_s: float = 0.0

    @property
    def total_s(self) -> float:
        """End-to-end suspension time (reboots run in parallel)."""
        return (
            self.cp_solving_s
            + self.master_comm_s
            + self.distribution_s
            + self.reboot_s
        )


def run_capacity_upgrade(
    planner: IntraNetworkPlanner,
    master_client: Optional[MasterClient] = None,
    operator: Optional[str] = None,
    agent_seed: int = 0,
) -> Tuple[PlanOutcome, LatencyBreakdown]:
    """Execute a full capacity upgrade for one network.

    Args:
        planner: Intra-network planner for this operator (already
            pointed at the spectrum to use; when a Master client is
            given, its assignment overrides the planner's channels).
        master_client: Optional connection to the AlphaWAN Master for
            spectrum sharing.
        operator: Operator name for Master registration (required when
            ``master_client`` is given).
        agent_seed: Seed for the modelled gateway-agent latencies.

    Returns:
        The planning outcome and the latency breakdown.
    """
    latency = LatencyBreakdown()

    if master_client is not None:
        if not operator:
            raise ValueError("operator name required for spectrum sharing")
        t0 = time.perf_counter()
        assignment = master_client.register(operator)
        latency.master_comm_s = time.perf_counter() - t0
        planner.channels = assignment.channels()

    outcome = planner.plan()
    latency.cp_solving_s = outcome.solve_time_s

    network: Network = planner.network
    configs: List[List[Channel]] = [
        outcome.solution.gateway_channels(outcome.cp_input, j)
        for j in range(len(network.gateways))
    ]
    latency.distribution_s = distribution_latency_s(configs)

    reboot_times = []
    for gw, channels in zip(network.gateways, configs):
        agent = GatewayAgent(gateway=gw, seed=agent_seed)
        reboot_times.append(agent.apply_config(channels))
    latency.reboot_s = max(reboot_times) if reboot_times else 0.0

    if planner.config.optimize_nodes:
        for i, dev in enumerate(network.devices):
            ch = outcome.cp_input.channels[outcome.solution.node_channels[i]]
            tier = outcome.cp_input.tiers[outcome.solution.node_tiers[i]]
            dev.apply_config(
                channel=ch, dr=tier.dr, tx_power_dbm=tier.tx_power_dbm
            )

    return outcome, latency
