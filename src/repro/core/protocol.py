"""Wire protocol between operators and the AlphaWAN Master.

Length-prefixed JSON over TCP: each message is a 4-byte big-endian
unsigned length followed by a UTF-8 JSON object.  Message types:

* ``register``   {"type": "register", "operator": str,
  "request_id": str?}
* ``release``    {"type": "release", "operator": str,
  "request_id": str?}
* ``resume``     {"type": "resume", "operator": str, "lease": str}
* ``status``     {"type": "status"}
* ``assignment`` {"type": "assignment", "operator", "slot", "shift_hz",
  "grid": {"start_hz", "width_hz", "spacing_hz", "bandwidth_hz"},
  "lease": str, "epoch": int}
* ``resumed``    — same payload as ``assignment`` (lease revalidated)
* ``released``   {"type": "released", "operator", "held": bool}
* ``status_ok``  {"type": "status_ok", ...snapshot}
* ``error``      {"type": "error", "message": str, "code": str}

``request_id`` is a client-generated token reused verbatim across
retries of one logical request; the Master journals completions by it,
so a retry reaching a restarted Master is answered from the journal
instead of re-executing (exactly-once over a lossy wire).  ``lease`` /
``epoch`` are the durability tokens described in ``DESIGN.md`` §11.
Error ``code`` is machine-readable: ``region_full``, ``degraded``
(Master read-only), ``lease_stale``, ``unknown_operator``,
``bad_request``, or ``unknown_type``.

Every request and reply may additionally carry an **optional** ``ctx``
key — the causal trace context of :mod:`repro.obs.causal`::

    "ctx": {"run": str, "trace": str, "span": str,
            "parent": str?, "lam": int}

Requests carry the caller's context with a fresh Lamport sample; replies
echo it with the Master's span and clock.  The field is strictly
additive: dispatch reads only known keys, so old peers interoperate
with new ones by ignoring ``ctx`` entirely (the run is simply untraced
across that hop).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Optional

from ..phy.channels import ChannelGrid
from .master import Assignment

__all__ = [
    "MAX_MESSAGE_BYTES",
    "encode_message",
    "read_message",
    "send_message",
    "grid_to_wire",
    "grid_from_wire",
    "assignment_to_wire",
    "assignment_from_wire",
    "ProtocolError",
]

MAX_MESSAGE_BYTES = 1 << 20  # 1 MiB: far above any AlphaWAN message
_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """Malformed or oversized protocol traffic."""


def encode_message(message: Dict) -> bytes:
    """Serialize one message to its wire form."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {len(payload)} bytes exceeds limit")
    return _HEADER.pack(len(payload)) + payload


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on orderly EOF at a boundary."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_message(
    sock: socket.socket, timeout_s: Optional[float] = None
) -> Optional[Dict]:
    """Read one message from a socket; ``None`` on clean EOF.

    Args:
        timeout_s: Optional receive deadline applied to the socket for
            this read.  A peer that stays silent past it raises
            ``socket.timeout`` (an ``OSError``), letting servers reap
            hung or half-open connections instead of pinning a handler
            thread forever.  ``None`` leaves the socket's own timeout
            untouched.

    Raises:
        ProtocolError: on truncation, oversized frames, or bad JSON.
        socket.timeout: when ``timeout_s`` elapses with no data.
    """
    if timeout_s is not None:
        sock.settimeout(timeout_s)
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds limit")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed before payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid message payload: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def send_message(sock: socket.socket, message: Dict) -> None:
    """Write one message to a socket."""
    sock.sendall(encode_message(message))


def grid_to_wire(grid: ChannelGrid) -> Dict[str, float]:
    """Serialize a channel grid."""
    return {
        "start_hz": grid.start_hz,
        "width_hz": grid.width_hz,
        "spacing_hz": grid.spacing_hz,
        "bandwidth_hz": grid.bandwidth_hz,
    }


def grid_from_wire(data: Dict) -> ChannelGrid:
    """Deserialize a channel grid."""
    try:
        return ChannelGrid(
            start_hz=float(data["start_hz"]),
            width_hz=float(data["width_hz"]),
            spacing_hz=float(data["spacing_hz"]),
            bandwidth_hz=float(data["bandwidth_hz"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid grid payload: {exc}")


def assignment_to_wire(assignment: Assignment) -> Dict:
    """Serialize an assignment response."""
    return {
        "type": "assignment",
        "operator": assignment.operator,
        "slot": assignment.slot,
        "shift_hz": assignment.shift_hz,
        "grid": grid_to_wire(assignment.grid),
        "channel_indices": list(assignment.channel_indices),
        "lease": assignment.lease,
        "epoch": assignment.epoch,
    }


def assignment_from_wire(data: Dict) -> Assignment:
    """Deserialize an assignment response.

    ``lease`` / ``epoch`` default when absent, so caches persisted by
    pre-durability versions still load.
    """
    try:
        return Assignment(
            operator=str(data["operator"]),
            slot=int(data["slot"]),
            shift_hz=float(data["shift_hz"]),
            grid=grid_from_wire(data["grid"]),
            channel_indices=tuple(int(i) for i in data["channel_indices"]),
            lease=str(data.get("lease", "")),
            epoch=int(data.get("epoch", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid assignment payload: {exc}")
