"""Wire protocol between operators and the AlphaWAN Master.

Length-prefixed JSON over TCP: each message is a 4-byte big-endian
unsigned length followed by a UTF-8 JSON object.  Message types:

* ``register``   {"type": "register", "operator": str}
* ``release``    {"type": "release", "operator": str}
* ``status``     {"type": "status"}
* ``assignment`` {"type": "assignment", "operator", "slot", "shift_hz",
  "grid": {"start_hz", "width_hz", "spacing_hz", "bandwidth_hz"}}
* ``released``   {"type": "released", "operator", "held": bool}
* ``status_ok``  {"type": "status_ok", ...snapshot}
* ``error``      {"type": "error", "message": str}
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Optional

from ..phy.channels import ChannelGrid
from .master import Assignment

__all__ = [
    "MAX_MESSAGE_BYTES",
    "encode_message",
    "read_message",
    "send_message",
    "grid_to_wire",
    "grid_from_wire",
    "assignment_to_wire",
    "assignment_from_wire",
    "ProtocolError",
]

MAX_MESSAGE_BYTES = 1 << 20  # 1 MiB: far above any AlphaWAN message
_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """Malformed or oversized protocol traffic."""


def encode_message(message: Dict) -> bytes:
    """Serialize one message to its wire form."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {len(payload)} bytes exceeds limit")
    return _HEADER.pack(len(payload)) + payload


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on orderly EOF at a boundary."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_message(sock: socket.socket) -> Optional[Dict]:
    """Read one message from a socket; ``None`` on clean EOF.

    Raises:
        ProtocolError: on truncation, oversized frames, or bad JSON.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds limit")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed before payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid message payload: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def send_message(sock: socket.socket, message: Dict) -> None:
    """Write one message to a socket."""
    sock.sendall(encode_message(message))


def grid_to_wire(grid: ChannelGrid) -> Dict[str, float]:
    """Serialize a channel grid."""
    return {
        "start_hz": grid.start_hz,
        "width_hz": grid.width_hz,
        "spacing_hz": grid.spacing_hz,
        "bandwidth_hz": grid.bandwidth_hz,
    }


def grid_from_wire(data: Dict) -> ChannelGrid:
    """Deserialize a channel grid."""
    try:
        return ChannelGrid(
            start_hz=float(data["start_hz"]),
            width_hz=float(data["width_hz"]),
            spacing_hz=float(data["spacing_hz"]),
            bandwidth_hz=float(data["bandwidth_hz"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid grid payload: {exc}")


def assignment_to_wire(assignment: Assignment) -> Dict:
    """Serialize an assignment response."""
    return {
        "type": "assignment",
        "operator": assignment.operator,
        "slot": assignment.slot,
        "shift_hz": assignment.shift_hz,
        "grid": grid_to_wire(assignment.grid),
        "channel_indices": list(assignment.channel_indices),
    }


def assignment_from_wire(data: Dict) -> Assignment:
    """Deserialize an assignment response."""
    try:
        return Assignment(
            operator=str(data["operator"]),
            slot=int(data["slot"]),
            shift_hz=float(data["shift_hz"]),
            grid=grid_from_wire(data["grid"]),
            channel_indices=tuple(int(i) for i in data["channel_indices"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid assignment payload: {exc}")
