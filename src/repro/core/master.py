"""The AlphaWAN Master node: regional spectrum-sharing coordinator.

Operators register before deploying infrastructure in a region; the
Master keeps the channel-occupancy record and answers requests with the
operator's allocation — a frequency-misaligned channel grid plus, when
operators outnumber the isolated misalignment slots, a disjoint channel
subset within the shared slot (section 4.3.2).  The class is
transport-agnostic — :mod:`.master_server` exposes it over TCP, and
tests may call it in-process.

Durability and recovery (``DESIGN.md`` §11):

* With a :class:`~repro.core.journal.StateJournal` attached, every
  mutating request is journaled **before** the in-memory state commits
  (write-ahead), and :meth:`snapshot` / :meth:`MasterNode.recover`
  rebuild the identical node after a ``kill -9`` — snapshot first,
  then replay of journal records past the snapshot's sequence number.
* Every assignment carries a **lease** token (minted deterministically
  from the grant) and the Master's **epoch** (incarnation counter,
  bumped on each recovery).  Reconnecting operators revalidate their
  lease with :meth:`resume` instead of re-registering.
* Mutations may carry a client-generated ``request_id``; completed
  request IDs are journaled, so a retry that reaches a *restarted*
  Master is answered from the journal instead of re-allocating —
  exactly-once semantics over a lossy wire.
* When a journal write fails (disk full, injected fault) the Master
  flips to **read-only mode**: reads (:meth:`status`, :meth:`resume`)
  keep working, mutations raise :class:`MasterReadOnlyError`.
"""

from __future__ import annotations

import hashlib
import logging
import threading
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from ..obs import runtime as _obs
from ..obs.events import EventType
from ..phy.channels import Channel, ChannelGrid
from .inter_planner import OperatorAllocation, allocate_operators
from .journal import (
    JournalError,
    StateJournal,
    read_snapshot,
    write_snapshot,
)

logger = logging.getLogger(__name__)

__all__ = [
    "Assignment",
    "LeaseError",
    "MasterNode",
    "MasterReadOnlyError",
    "RegionFullError",
    "SNAPSHOT_SCHEMA_VERSION",
]

SNAPSHOT_SCHEMA_VERSION = 1


class RegionFullError(Exception):
    """Raised when every operator slot of the region is taken."""

    code = "region_full"


class MasterReadOnlyError(Exception):
    """The Master cannot persist mutations and rejects them (degraded)."""

    code = "degraded"


class LeaseError(Exception):
    """A resume handshake presented an unknown operator or stale lease."""

    def __init__(self, message: str, code: str = "lease_invalid") -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class Assignment:
    """A channel assignment issued to one operator.

    ``lease`` is the proof-of-grant token the operator presents on
    :meth:`MasterNode.resume`; ``epoch`` is the Master incarnation that
    issued (or, after recovery, revalidated) the assignment.
    """

    operator: str
    slot: int
    shift_hz: float
    grid: ChannelGrid
    channel_indices: Tuple[int, ...]
    lease: str = ""
    epoch: int = 0

    def channels(self) -> List[Channel]:
        """The operator's usable channels."""
        return [self.grid.channel(i) for i in self.channel_indices]


def _mint_lease(operator: str, slot: int, seq: int) -> str:
    """Deterministic lease token for one grant.

    Derived from the grant's identity (operator, slot, journal
    sequence), so journal replay re-mints byte-identical leases — a
    lease issued before a crash still validates after recovery.
    """
    digest = hashlib.blake2b(
        f"{operator}:{slot}:{seq}".encode("utf-8"), digest_size=12
    )
    return digest.hexdigest()


class MasterNode:
    """Centralized channel division and occupancy bookkeeping.

    Args:
        base_grid: The regional spectrum's channel grid.
        expected_networks: The Master's estimate of how many networks
            will coexist in the region; fixes the misalignment step and
            the channel division.
        overlap_ratio: Optional explicit adjacent-operator channel
            overlap ratio (the paper evaluates 20 %, 40 % and 60 %);
            overrides the uniform division.
        journal: Optional write-ahead :class:`StateJournal`; with one
            attached every mutation is durable before it is answered,
            and :meth:`recover` rebuilds the node after a crash.
    """

    def __init__(
        self,
        base_grid: ChannelGrid,
        expected_networks: int = 4,
        overlap_ratio: Optional[float] = None,
        journal: Optional[StateJournal] = None,
    ) -> None:
        self.base_grid = base_grid
        self.expected_networks = expected_networks
        self.overlap_ratio = overlap_ratio
        self.allocations: List[OperatorAllocation] = allocate_operators(
            base_grid, expected_networks, overlap_ratio_target=overlap_ratio
        )
        self._lock = threading.Lock()
        self._assignments: Dict[str, Assignment] = {}
        self._free: List[int] = list(range(len(self.allocations)))
        # Exactly-once bookkeeping: request_id -> its journaled op
        # record, bounded to the *latest* request per operator (the
        # only one a client can still be retrying); the eviction is a
        # pure function of the record sequence, so journal replay
        # rebuilds the identical cache.
        self._completed: Dict[str, Dict[str, Any]] = {}
        self._latest_request: Dict[str, str] = {}
        self._seq = 0  # last applied journal sequence number
        self._epoch = 0  # incarnation counter, bumped by recover()
        self._read_only = False
        self.journal = journal
        if journal is not None:
            journal.ensure_header(self._config_dict())

    # -- configuration -----------------------------------------------------

    def _config_dict(self) -> Dict[str, Any]:
        """The constructor arguments, JSON-safe (journal header payload)."""
        return {
            "grid": {
                "start_hz": self.base_grid.start_hz,
                "width_hz": self.base_grid.width_hz,
                "spacing_hz": self.base_grid.spacing_hz,
                "bandwidth_hz": self.base_grid.bandwidth_hz,
            },
            "expected_networks": self.expected_networks,
            "overlap_ratio": self.overlap_ratio,
        }

    @property
    def epoch(self) -> int:
        """The Master's incarnation counter (bumps on every recovery)."""
        return self._epoch

    @property
    def read_only(self) -> bool:
        """Whether the Master is refusing mutations (journal failure)."""
        return self._read_only

    # -- mutations ---------------------------------------------------------

    def register(
        self, operator: str, request_id: Optional[str] = None
    ) -> Assignment:
        """Register an operator and hand out its channel allocation.

        Re-registering an operator returns its existing assignment
        (idempotent, so operators may safely retry over flaky links);
        with a ``request_id`` the retry is answered from the journaled
        completion record even across a Master restart.

        Raises:
            RegionFullError: when all allocations are occupied.
            MasterReadOnlyError: while the Master cannot persist state.
        """
        if not operator:
            raise ValueError("operator name must be non-empty")
        with self._lock:
            replayed = self._completed_response(request_id, operator)
            if replayed is not None:
                return replayed
            self._check_writable()
            existing = self._assignments.get(operator)
            if existing is not None:
                if request_id is not None:
                    self._commit(
                        {
                            "kind": "op",
                            "seq": self._seq + 1,
                            "op": "register",
                            "operator": operator,
                            "slot": existing.slot,
                            "lease": existing.lease,
                            "request_id": request_id,
                        }
                    )
                return existing
            if not self._free:
                raise RegionFullError(
                    f"region already hosts {len(self.allocations)} networks"
                )
            index = self._free[0]
            seq = self._seq + 1
            record = {
                "kind": "op",
                "seq": seq,
                "op": "register",
                "operator": operator,
                "slot": index,
                "lease": _mint_lease(operator, index, seq),
                "request_id": request_id,
            }
            self._commit(record)
            return self._assignments[operator]

    def release(self, operator: str, request_id: Optional[str] = None) -> bool:
        """Release an operator's allocation; returns whether it was held.

        With a ``request_id`` the outcome is journaled, so a retried
        release reports the original verdict instead of ``False``.

        Raises:
            MasterReadOnlyError: while the Master cannot persist state.
        """
        with self._lock:
            replayed = self._completed.get(request_id or "")
            if (
                replayed is not None
                and replayed.get("operator") == operator
                and replayed.get("op") == "release"
            ):
                return bool(replayed.get("held"))
            self._check_writable()
            assignment = self._assignments.get(operator)
            held = assignment is not None
            if not held and request_id is None:
                # Releasing nothing mutates nothing: skip the journal.
                return False
            self._commit(
                {
                    "kind": "op",
                    "seq": self._seq + 1,
                    "op": "release",
                    "operator": operator,
                    "held": held,
                    "request_id": request_id,
                }
            )
            return held

    # -- reads -------------------------------------------------------------

    def resume(self, operator: str, lease: str) -> Assignment:
        """Revalidate a reconnecting operator's lease.

        A read-only operation: it works in degraded mode and across
        restarts (leases are re-minted identically by journal replay).

        Raises:
            LeaseError: with ``code="unknown_operator"`` when no
                assignment is held, or ``code="lease_stale"`` when the
                presented token does not match the current grant.
        """
        with self._lock:
            assignment = self._assignments.get(operator)
            if assignment is None:
                raise LeaseError(
                    f"operator {operator!r} holds no assignment; re-register",
                    code="unknown_operator",
                )
            if lease != assignment.lease:
                raise LeaseError(
                    f"stale lease for operator {operator!r}",
                    code="lease_stale",
                )
            return assignment

    def status(self) -> Dict[str, object]:
        """Occupancy snapshot of the region."""
        with self._lock:
            return {
                "slots": len(self.allocations),
                "occupied": len(self._assignments),
                "free": len(self._free),
                "operators": {
                    op: a.slot for op, a in sorted(self._assignments.items())
                },
                "epoch": self._epoch,
                "journal_seq": self._seq,
                "read_only": self._read_only,
            }

    def assignment_of(self, operator: str) -> Optional[Assignment]:
        """Look up an operator's current assignment."""
        with self._lock:
            return self._assignments.get(operator)

    # -- write-ahead commit path -------------------------------------------

    def _check_writable(self) -> None:
        if self._read_only:
            raise MasterReadOnlyError(
                "master is read-only: state journal unavailable"
            )

    def _completed_response(
        self, request_id: Optional[str], operator: str
    ) -> Optional[Assignment]:
        """The recorded answer for an already-executed register request."""
        if request_id is None:
            return None
        record = self._completed.get(request_id)
        if record is None or record.get("operator") != operator:
            return None
        if record.get("op") != "register":
            return None
        return self._assignment_from_record(record)

    def _commit(self, record: Dict[str, Any]) -> None:
        """Write-ahead journal ``record``, then apply it to memory.

        A journal failure flips the Master to read-only mode and
        surfaces as :class:`MasterReadOnlyError`; the in-memory state
        is untouched, so what the Master answers always matches what
        the journal can replay.
        """
        if self.journal is not None:
            try:
                self.journal.append(record)
            except JournalError as exc:
                self._read_only = True
                self._emit_readonly(str(exc))
                raise MasterReadOnlyError(
                    f"journal write failed; master now read-only: {exc}"
                ) from exc
        self._apply_record(record)

    def _emit_readonly(self, reason: str) -> None:
        logger.error("master flipping to read-only mode: %s", reason)
        rec = _obs.TRACE
        if rec is not None:
            rec.emit(EventType.MASTER_READONLY, reason=reason[:120])
        metrics = _obs.METRICS
        if metrics is not None:
            metrics.counter(
                "repro_master_readonly_total",
                "journal failures flipping the Master read-only",
            ).inc()

    def _assignment_from_record(self, record: Dict[str, Any]) -> Assignment:
        index = int(record["slot"])
        alloc = self.allocations[index]
        return Assignment(
            operator=str(record["operator"]),
            slot=index,
            shift_hz=alloc.shift_hz,
            grid=alloc.grid,
            channel_indices=alloc.channel_indices,
            lease=str(record.get("lease", "")),
            epoch=self._epoch,
        )

    def _apply_record(self, record: Dict[str, Any]) -> None:
        """Apply one journaled op to the in-memory tables (commit/replay)."""
        op = record.get("op")
        operator = str(record.get("operator", ""))
        if op == "register":
            if operator not in self._assignments:
                index = int(record["slot"])
                if index in self._free:
                    self._free.remove(index)
                self._assignments[operator] = self._assignment_from_record(
                    record
                )
        elif op == "release":
            if record.get("held") and operator in self._assignments:
                assignment = self._assignments.pop(operator)
                self._free.append(assignment.slot)
                self._free.sort()
        request_id = record.get("request_id")
        if isinstance(request_id, str) and request_id:
            # Keep only the operator's newest request: an older one can
            # no longer be retried once the client issued a newer ID,
            # so the cache stays bounded by the operator count.
            previous = self._latest_request.get(operator)
            if previous is not None and previous != request_id:
                self._completed.pop(previous, None)
            self._latest_request[operator] = request_id
            self._completed[request_id] = record
        self._seq = int(record["seq"])

    # -- snapshot / restore / recover --------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The node's complete durable state, JSON-safe and canonical.

        Two nodes with the same history produce byte-identical
        ``json.dumps(snapshot, sort_keys=True)`` output — the failover
        drill's "same state after ``kill -9``" check compares exactly
        that.
        """
        with self._lock:
            return {
                "schema": SNAPSHOT_SCHEMA_VERSION,
                "seq": self._seq,
                "epoch": self._epoch,
                "config": self._config_dict(),
                "assignments": {
                    op: {"slot": a.slot, "lease": a.lease}
                    for op, a in sorted(self._assignments.items())
                },
                "free": list(self._free),
                "completed": {
                    rid: dict(rec)
                    for rid, rec in sorted(self._completed.items())
                },
            }

    def snapshot_to(self, path: str) -> None:
        """Atomically persist :meth:`snapshot` to ``path``."""
        write_snapshot(path, self.snapshot())

    @classmethod
    def restore(
        cls,
        snapshot: Dict[str, Any],
        journal: Optional[StateJournal] = None,
    ) -> "MasterNode":
        """Rebuild a node from a :meth:`snapshot` payload."""
        config = snapshot["config"]
        node = cls(
            ChannelGrid(**config["grid"]),
            expected_networks=int(config["expected_networks"]),
            overlap_ratio=config.get("overlap_ratio"),
            journal=journal,
        )
        node._epoch = int(snapshot.get("epoch", 0))
        node._seq = int(snapshot.get("seq", 0))
        node._free = [int(i) for i in snapshot.get("free", [])]
        for operator, info in snapshot.get("assignments", {}).items():
            node._assignments[operator] = node._assignment_from_record(
                {"operator": operator, **info}
            )
        node._completed = {
            str(rid): dict(rec)
            for rid, rec in snapshot.get("completed", {}).items()
        }
        for rid, rec in sorted(
            node._completed.items(),
            key=lambda item: int(item[1].get("seq", 0)),
        ):
            op_name = str(rec.get("operator", ""))
            if op_name:
                node._latest_request[op_name] = rid
        return node

    @classmethod
    def recover(
        cls,
        journal_path: str,
        snapshot_path: Optional[str] = None,
        fsync: bool = True,
    ) -> "MasterNode":
        """Rebuild the Master after a crash: snapshot + journal replay.

        Loads the latest usable snapshot (if any), replays every
        journal record past its sequence number, bumps the epoch, and
        reopens the journal for appending — the node answers requests
        with the exact state it held when the previous incarnation
        died, duplicate-retry answers included.  A torn journal tail is
        truncated off the file before the journal is reopened, so the
        new incarnation's first append cannot concatenate onto the
        fragment; the bumped epoch is journaled as a ``recovery``
        record, so it stays strictly monotonic across incarnations even
        when no snapshot exists.

        Raises:
            JournalError: when neither a snapshot nor a journal header
                is available, committed records are corrupt, or the
                reopened journal rejects the recovery record.
        """
        records = StateJournal.replay(journal_path, repair=True)
        snap = read_snapshot(snapshot_path) if snapshot_path else None
        if snap is not None:
            node = cls.restore(snap)
        else:
            header = next(
                (r for r in records if r.get("kind") == "header"), None
            )
            if header is None:
                raise JournalError(
                    f"cannot recover: no snapshot and no journal header "
                    f"in {journal_path!r}"
                )
            config = header["config"]
            node = cls(
                ChannelGrid(**config["grid"]),
                expected_networks=int(config["expected_networks"]),
                overlap_ratio=config.get("overlap_ratio"),
            )
        replayed = 0
        for record in records:
            kind = record.get("kind")
            if kind == "recovery":
                # Epochs are journaled so they survive journal-only
                # recovery (no snapshot); max() keeps them monotonic
                # whether or not a newer snapshot was loaded.
                node._epoch = max(node._epoch, int(record.get("epoch", 0)))
                continue
            if kind != "op":
                continue
            if int(record.get("seq", 0)) <= node._seq:
                continue
            node._apply_record(record)
            replayed += 1
        node._epoch += 1
        node._read_only = False
        # Assignments restored into the new incarnation carry its epoch.
        node._assignments = {
            op: replace(a, epoch=node._epoch)
            for op, a in node._assignments.items()
        }
        node.journal = StateJournal(journal_path, fsync=fsync)
        node.journal.ensure_header(node._config_dict())
        node.journal.append(
            {"kind": "recovery", "seq": node._seq, "epoch": node._epoch}
        )
        logger.info(
            "master recovered from %s: seq=%d, %d record(s) replayed, "
            "epoch=%d, %d operator(s)",
            journal_path,
            node._seq,
            replayed,
            node._epoch,
            len(node._assignments),
        )
        rec = _obs.TRACE
        if rec is not None:
            rec.emit(
                EventType.MASTER_RECOVERED,
                seq=node._seq,
                replayed=replayed,
                epoch=node._epoch,
                operators=len(node._assignments),
            )
        metrics = _obs.METRICS
        if metrics is not None:
            metrics.counter(
                "repro_master_recoveries_total",
                "Master crash recoveries (snapshot + journal replay)",
            ).inc()
        return node
