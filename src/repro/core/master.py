"""The AlphaWAN Master node: regional spectrum-sharing coordinator.

Operators register before deploying infrastructure in a region; the
Master keeps the channel-occupancy record and answers requests with the
operator's allocation — a frequency-misaligned channel grid plus, when
operators outnumber the isolated misalignment slots, a disjoint channel
subset within the shared slot (section 4.3.2).  The class is
transport-agnostic — :mod:`.master_server` exposes it over TCP, and
tests may call it in-process.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..phy.channels import Channel, ChannelGrid
from .inter_planner import OperatorAllocation, allocate_operators

__all__ = ["Assignment", "MasterNode", "RegionFullError"]


class RegionFullError(Exception):
    """Raised when every operator slot of the region is taken."""


@dataclass(frozen=True)
class Assignment:
    """A channel assignment issued to one operator."""

    operator: str
    slot: int
    shift_hz: float
    grid: ChannelGrid
    channel_indices: Tuple[int, ...]

    def channels(self) -> List[Channel]:
        """The operator's usable channels."""
        return [self.grid.channel(i) for i in self.channel_indices]


class MasterNode:
    """Centralized channel division and occupancy bookkeeping.

    Args:
        base_grid: The regional spectrum's channel grid.
        expected_networks: The Master's estimate of how many networks
            will coexist in the region; fixes the misalignment step and
            the channel division.
        overlap_ratio: Optional explicit adjacent-operator channel
            overlap ratio (the paper evaluates 20 %, 40 % and 60 %);
            overrides the uniform division.
    """

    def __init__(
        self,
        base_grid: ChannelGrid,
        expected_networks: int = 4,
        overlap_ratio: Optional[float] = None,
    ) -> None:
        self.base_grid = base_grid
        self.allocations: List[OperatorAllocation] = allocate_operators(
            base_grid, expected_networks, overlap_ratio_target=overlap_ratio
        )
        self._lock = threading.Lock()
        self._assignments: Dict[str, Assignment] = {}
        self._free: List[int] = list(range(len(self.allocations)))

    def register(self, operator: str) -> Assignment:
        """Register an operator and hand out its channel allocation.

        Re-registering an operator returns its existing assignment
        (idempotent, so operators may safely retry over flaky links).

        Raises:
            RegionFullError: when all allocations are occupied.
        """
        if not operator:
            raise ValueError("operator name must be non-empty")
        with self._lock:
            existing = self._assignments.get(operator)
            if existing is not None:
                return existing
            if not self._free:
                raise RegionFullError(
                    f"region already hosts {len(self.allocations)} networks"
                )
            index = self._free.pop(0)
            alloc = self.allocations[index]
            assignment = Assignment(
                operator=operator,
                slot=index,
                shift_hz=alloc.shift_hz,
                grid=alloc.grid,
                channel_indices=alloc.channel_indices,
            )
            self._assignments[operator] = assignment
            return assignment

    def release(self, operator: str) -> bool:
        """Release an operator's allocation; returns whether it was held."""
        with self._lock:
            assignment = self._assignments.pop(operator, None)
            if assignment is None:
                return False
            self._free.append(assignment.slot)
            self._free.sort()
            return True

    def status(self) -> Dict[str, object]:
        """Occupancy snapshot of the region."""
        with self._lock:
            return {
                "slots": len(self.allocations),
                "occupied": len(self._assignments),
                "free": len(self._free),
                "operators": {
                    op: a.slot for op, a in sorted(self._assignments.items())
                },
            }

    def assignment_of(self, operator: str) -> Optional[Assignment]:
        """Look up an operator's current assignment."""
        with self._lock:
            return self._assignments.get(operator)
