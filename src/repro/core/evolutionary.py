"""A seeded, steady-state evolutionary solver for integer genomes.

The paper solves the Channel Planning (CP) problem — a knapsack-variant,
NP-hard — with an evolutionary algorithm on a central server
(section 4.3.1).  This module provides the generic engine: integer
genomes with per-gene bounds, tournament selection, uniform crossover,
reset mutation, elitism, and optional seed individuals (AlphaWAN seeds
the population with greedy constructions and with high-demand traffic
samples).
"""

from __future__ import annotations

import logging
import random
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..obs import runtime as _obs
from ..obs.events import EventType
from ..obs.profiling import span

logger = logging.getLogger(__name__)

__all__ = ["GAConfig", "GAResult", "evolve"]

Genome = List[int]
FitnessFn = Callable[[Genome], float]
RepairFn = Callable[[Genome, random.Random], Genome]


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the evolutionary search.

    Attributes:
        population: Individuals per generation.
        generations: Evolution steps.
        tournament_k: Tournament size for parent selection.
        crossover_rate: Probability of uniform crossover per mating.
        mutation_rate: Per-gene reset probability.
        elitism: Individuals copied unchanged into the next generation.
        seed: RNG seed (the whole run is deterministic).
        patience: Stop early after this many generations without
            improvement (0 disables early stopping).
    """

    population: int = 60
    generations: int = 120
    tournament_k: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.02
    elitism: int = 2
    seed: int = 0
    patience: int = 30

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be at least 2")
        if not 0 <= self.elitism < self.population:
            raise ValueError("elitism must be in [0, population)")


@dataclass
class GAResult:
    """Outcome of one evolutionary run.

    ``gen_wall_s`` and ``gen_evaluations`` are per-generation telemetry
    (wall-clock seconds and fitness evaluations, including the initial
    population's as entry 0); both default empty so pre-telemetry
    callers and serialized results stay valid.
    """

    best_genome: Genome
    best_fitness: float
    generations_run: int
    history: List[float] = field(default_factory=list)
    gen_wall_s: List[float] = field(default_factory=list)
    gen_evaluations: List[int] = field(default_factory=list)

    @property
    def evaluations(self) -> int:
        """Total fitness evaluations across the run."""
        return sum(self.gen_evaluations)


def _random_genome(bounds: Sequence[Tuple[int, int]], rng: random.Random) -> Genome:
    return [rng.randint(lo, hi) for lo, hi in bounds]


def _mutate(
    genome: Genome,
    bounds: Sequence[Tuple[int, int]],
    rate: float,
    rng: random.Random,
) -> Genome:
    out = list(genome)
    for idx, (lo, hi) in enumerate(bounds):
        if rng.random() < rate:
            out[idx] = rng.randint(lo, hi)
    return out


def _crossover(a: Genome, b: Genome, rng: random.Random) -> Genome:
    return [x if rng.random() < 0.5 else y for x, y in zip(a, b)]


def _tournament(
    scored: List[Tuple[float, Genome]], k: int, rng: random.Random
) -> Genome:
    picks = rng.sample(range(len(scored)), min(k, len(scored)))
    best = max(picks, key=lambda i: scored[i][0])
    return scored[best][1]


def evolve(
    bounds: Sequence[Tuple[int, int]],
    fitness: FitnessFn,
    config: GAConfig = GAConfig(),
    seeds: Sequence[Genome] = (),
    repair: Optional[RepairFn] = None,
) -> GAResult:
    """Run the evolutionary search.

    Args:
        bounds: Inclusive (low, high) bounds per gene.
        fitness: Objective to *maximize*.
        config: Hyper-parameters.
        seeds: Optional genomes injected into the initial population
            (e.g. greedy constructions); clipped to bounds.
        repair: Optional constraint-repair hook applied to every new
            individual before evaluation.

    Returns:
        The best genome found and the fitness trajectory.
    """
    for lo, hi in bounds:
        if lo > hi:
            raise ValueError(f"invalid gene bounds ({lo}, {hi})")
    rng = random.Random(config.seed)

    def clip(genome: Genome) -> Genome:
        return [
            min(max(g, lo), hi) for g, (lo, hi) in zip(genome, bounds)
        ]

    def prepare(genome: Genome) -> Genome:
        genome = clip(genome)
        if repair is not None:
            genome = clip(repair(genome, rng))
        return genome

    population: List[Genome] = [prepare(list(s)) for s in seeds]
    while len(population) < config.population:
        population.append(prepare(_random_genome(bounds, rng)))
    population = population[: config.population]

    gen_wall_s: List[float] = []
    gen_evaluations: List[int] = []

    def telemetry(gen: int, evals: int, wall_s: float, scored_gen) -> None:
        gen_wall_s.append(wall_s)
        gen_evaluations.append(evals)
        rec = _obs.TRACE
        if rec is not None:
            fits = [f for f, _ in scored_gen]
            rec.emit(
                EventType.GA_GENERATION,
                gen=gen,
                best=max(fits),
                mean=sum(fits) / len(fits),
                evals=evals,
                gen_wall_s=wall_s,
            )
        metrics = _obs.METRICS
        if metrics is not None:
            metrics.histogram(
                "repro_ga_generation_seconds",
                "wall time per GA generation",
            ).observe(wall_s)
            metrics.counter(
                "repro_ga_evaluations_total",
                "GA fitness evaluations",
            ).inc(evals)

    with span("ga.evolve"):
        t0 = time.perf_counter()
        scored = [(fitness(g), g) for g in population]
        scored.sort(key=lambda t: t[0], reverse=True)
        telemetry(0, len(population), time.perf_counter() - t0, scored)
        best_fit, best_genome = scored[0]
        history = [best_fit]
        stall = 0
        gens_run = 0

        for _ in range(config.generations):
            gens_run += 1
            t0 = time.perf_counter()
            next_gen: List[Genome] = [g for _, g in scored[: config.elitism]]
            while len(next_gen) < config.population:
                parent_a = _tournament(scored, config.tournament_k, rng)
                if rng.random() < config.crossover_rate:
                    parent_b = _tournament(scored, config.tournament_k, rng)
                    child = _crossover(parent_a, parent_b, rng)
                else:
                    child = list(parent_a)
                child = _mutate(child, bounds, config.mutation_rate, rng)
                next_gen.append(prepare(child))
            scored = [(fitness(g), g) for g in next_gen]
            scored.sort(key=lambda t: t[0], reverse=True)
            if scored[0][0] > best_fit:
                best_fit, best_genome = scored[0]
                stall = 0
            else:
                stall += 1
            history.append(best_fit)
            telemetry(
                gens_run, len(next_gen), time.perf_counter() - t0, scored
            )
            if config.patience and stall >= config.patience:
                break

    rec = _obs.TRACE
    if rec is not None:
        rec.emit(
            EventType.GA_DONE,
            generations=gens_run,
            best=best_fit,
            evals=sum(gen_evaluations),
        )
    logger.info(
        "GA finished: %d generations, best fitness %.6g, %d evaluations",
        gens_run,
        best_fit,
        sum(gen_evaluations),
    )
    return GAResult(
        best_genome=list(best_genome),
        best_fitness=best_fit,
        generations_run=gens_run,
        history=history,
        gen_wall_s=gen_wall_s,
        gen_evaluations=gen_evaluations,
    )
