"""TCP server exposing the AlphaWAN Master node.

One thread per operator connection; the underlying
:class:`~repro.core.master.MasterNode` is already thread-safe.  Use as
a context manager::

    with MasterServer(MasterNode(grid, expected_networks=4)) as server:
        client = MasterClient(server.address)
        assignment = client.register("operator-1")

Fault injection: with a :class:`~repro.faults.plan.FaultPlan` the
server consults the plan's Master outage windows on every request
(against ``clock``, which defaults to seconds since server start) and
simulates an outage by dropping the connection without answering —
exactly what a crashed Master looks like from the operator side.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.httpexport import HealthHTTPExporter

from ..faults.plan import FaultPlan
from ..obs import runtime as _obs
from ..obs.events import EventType
from .master import MasterNode, RegionFullError

logger = logging.getLogger(__name__)
from .protocol import (
    ProtocolError,
    assignment_to_wire,
    read_message,
    send_message,
)

__all__ = ["MasterServer"]


class MasterServer:
    """Threaded TCP front-end for a :class:`MasterNode`.

    Args:
        master: The coordination logic.
        host / port: Listening address (port 0 = ephemeral).
        fault_plan: Optional fault plan whose Master outage windows this
            server honours.
        clock: Time source evaluated against the plan's windows;
            defaults to seconds since server construction.  Tests pass
            a controllable callable to pin the server inside or outside
            an outage.
    """

    def __init__(
        self,
        master: MasterNode,
        host: str = "127.0.0.1",
        port: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.master = master
        self.fault_plan = fault_plan
        # Real-TCP-server wall clock: the default clock drives fault
        # windows for live servers only; deterministic runs inject a
        # virtual clock instead.
        if clock is None:
            epoch = time.monotonic()  # repro: noqa[DET002]
            clock = lambda: time.monotonic() - epoch  # noqa: E731  # repro: noqa[DET002]
        self.clock = clock
        self.dropped_requests = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)
        self.address: Tuple[str, int] = self._sock.getsockname()
        self._conns: set = set()
        self._conns_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, name="alphawan-master", daemon=True
        )
        self._started = False
        self._exporter: Optional["HealthHTTPExporter"] = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "MasterServer":
        """Start accepting connections (idempotent)."""
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    def close(self) -> None:
        """Stop the server and sever every open connection.

        Closing live operator connections is what makes this a faithful
        Master crash: clients mid-exchange see a dead socket, exactly
        what their retry/reconnect path is built for.
        """
        self._stop.set()
        try:
            # Unblock accept() with a self-connection.
            poke = socket.create_connection(self.address, timeout=0.5)
            poke.close()
        except OSError:
            pass
        self._sock.close()
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        if self._started:
            self._thread.join(timeout=2.0)
        if self._exporter is not None:
            self._exporter.close()
            self._exporter = None

    def attach_exporter(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "HealthHTTPExporter":
        """Attach a health/metrics HTTP endpoint to this Master.

        ``/healthz`` merges the Master's occupancy snapshot (plus its
        dropped-request count) under ``sources.master``; the exporter is
        closed with the server.
        """
        from ..obs.httpexport import HealthHTTPExporter

        if self._exporter is None:
            self._exporter = HealthHTTPExporter(
                health_sources={"master": self._health_source},
                host=host,
                port=port,
            ).start()
        return self._exporter

    def _health_source(self) -> Dict[str, object]:
        snapshot: Dict[str, object] = dict(self.master.status())
        snapshot["dropped_requests"] = self.dropped_requests
        snapshot["degraded"] = self._master_down()
        return snapshot

    def __enter__(self) -> "MasterServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request handling --------------------------------------------------

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                break
            if self._stop.is_set():
                conn.close()
                break
            with self._conns_lock:
                self._conns.add(conn)
            handler = threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            )
            handler.start()

    def _handle(self, conn: socket.socket) -> None:
        try:
            self._serve_connection(conn)
        finally:
            with self._conns_lock:
                self._conns.discard(conn)

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while True:
                try:
                    message = read_message(conn)
                except (ProtocolError, OSError):
                    return
                if message is None:
                    return
                if self._master_down():
                    # Outage window: vanish mid-exchange, as a crashed
                    # Master would — no error reply, just a dead socket.
                    # The drop is traced *before* the socket closes, so
                    # it sequences ahead of the client's retry events.
                    self.dropped_requests += 1
                    rec = _obs.TRACE
                    if rec is not None:
                        rec.emit(
                            EventType.MASTER_DROPPED,
                            req=message.get("type"),
                        )
                    metrics = _obs.METRICS
                    if metrics is not None:
                        metrics.counter(
                            "repro_master_dropped_total",
                            "requests dropped during Master outages",
                        ).inc()
                    logger.warning(
                        "master outage: dropping %r request mid-exchange",
                        message.get("type"),
                    )
                    return
                try:
                    response = self._dispatch(message)
                except (ProtocolError, OSError):
                    return
                try:
                    send_message(conn, response)
                except OSError:
                    return

    def _master_down(self) -> bool:
        """Whether the fault plan places us inside a Master outage."""
        if self.fault_plan is None:
            return False
        return self.fault_plan.master_down_at(self.clock())

    def _dispatch(self, message: Dict) -> Dict:
        mtype = message.get("type")
        if mtype == "register":
            operator = message.get("operator", "")
            try:
                assignment = self.master.register(str(operator))
            except (ValueError, RegionFullError) as exc:
                return {"type": "error", "message": str(exc)}
            return assignment_to_wire(assignment)
        if mtype == "release":
            operator = str(message.get("operator", ""))
            held = self.master.release(operator)
            return {"type": "released", "operator": operator, "held": held}
        if mtype == "status":
            snapshot = self.master.status()
            return {"type": "status_ok", **snapshot}
        return {"type": "error", "message": f"unknown message type {mtype!r}"}
