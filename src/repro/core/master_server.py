"""TCP server exposing the AlphaWAN Master node.

One thread per operator connection; the underlying
:class:`~repro.core.master.MasterNode` is already thread-safe.  Use as
a context manager::

    with MasterServer(MasterNode(grid, expected_networks=4)) as server:
        client = MasterClient(server.address)
        assignment = client.register("operator-1")

Fault injection: with a :class:`~repro.faults.plan.FaultPlan` the
server consults the plan's Master outage windows on every request
(against ``clock``, which defaults to seconds since server start) and
simulates an outage by dropping the connection without answering —
exactly what a crashed Master looks like from the operator side.  The
plan's :class:`~repro.faults.plan.MasterCrash` entries go further:
after the Nth request is **applied** (journaled and committed) the
server dies without replying — the precise window where a retried
request would double-assign spectrum if the Master did not answer
replays from its journal (see ``DESIGN.md`` §11).

A ``recv_timeout_s`` bounds how long a connection may sit silent
between requests; hung or half-open clients are reaped (connection
closed, ``master.conn_reaped`` traced) instead of pinning a handler
thread forever.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.httpexport import HealthHTTPExporter

from ..faults.plan import FaultPlan
from ..obs import runtime as _obs
from ..obs.causal import TraceContext
from ..obs.events import EventType
from .master import (
    LeaseError,
    MasterNode,
    MasterReadOnlyError,
    RegionFullError,
)

logger = logging.getLogger(__name__)
from .protocol import (
    ProtocolError,
    assignment_to_wire,
    read_message,
    send_message,
)

__all__ = ["MasterServer"]


def _ctx_fields(ctx: Optional[TraceContext]) -> Dict[str, str]:
    """Trace/parent-span stamps for Master-side fault events.

    Fault events (drops, crashes) never produce a reply, so the causal
    link to the requesting client must ride on the event itself — the
    merge and ``trace explain`` join on these fields.
    """
    if ctx is None:
        return {}
    return {"trace": ctx.trace_id, "pspan": ctx.span_id}


class MasterServer:
    """Threaded TCP front-end for a :class:`MasterNode`.

    Args:
        master: The coordination logic.
        host / port: Listening address (port 0 = ephemeral).
        fault_plan: Optional fault plan whose Master outage windows and
            crash points this server honours.
        clock: Time source evaluated against the plan's windows;
            defaults to seconds since server construction.  Tests pass
            a controllable callable to pin the server inside or outside
            an outage.
        recv_timeout_s: Optional per-connection receive deadline; a
            connection silent for longer is reaped (closed with a
            trace event) so it cannot pin a handler thread.
    """

    def __init__(
        self,
        master: MasterNode,
        host: str = "127.0.0.1",
        port: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        clock: Optional[Callable[[], float]] = None,
        recv_timeout_s: Optional[float] = None,
    ) -> None:
        self.master = master
        self.fault_plan = fault_plan
        # Real-TCP-server wall clock: the default clock drives fault
        # windows for live servers only; deterministic runs inject a
        # virtual clock instead.
        if clock is None:
            epoch = time.monotonic()  # repro: noqa[DET002]
            clock = lambda: time.monotonic() - epoch  # noqa: E731  # repro: noqa[DET002]
        self.clock = clock
        self.recv_timeout_s = recv_timeout_s
        # Handler threads mutate these concurrently; all three share one
        # lock (an unlocked `+= 1` is a lost-update race).
        self._counters_lock = threading.Lock()
        self._dropped_requests = 0
        self._reaped_connections = 0
        self._requests_seen = 0
        self._crash_points = (
            sorted(c.at_request for c in fault_plan.master_crashes)
            if fault_plan is not None
            else []
        )
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)
        self.address: Tuple[str, int] = self._sock.getsockname()
        self._conns: set = set()
        self._conns_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, name="alphawan-master", daemon=True
        )
        self._started = False
        self._exporter: Optional["HealthHTTPExporter"] = None

    # -- counters ----------------------------------------------------------

    @property
    def dropped_requests(self) -> int:
        """Requests dropped inside Master outage windows."""
        with self._counters_lock:
            return self._dropped_requests

    @property
    def reaped_connections(self) -> int:
        """Idle/half-open connections reaped by the receive timeout."""
        with self._counters_lock:
            return self._reaped_connections

    @property
    def requests_seen(self) -> int:
        """Requests read off the wire (served, dropped, or crashed on)."""
        with self._counters_lock:
            return self._requests_seen

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "MasterServer":
        """Start accepting connections (idempotent)."""
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    def close(self) -> None:
        """Stop the server and sever every open connection.

        Closing live operator connections is what makes this a faithful
        Master crash: clients mid-exchange see a dead socket, exactly
        what their retry/reconnect path is built for.
        """
        self._stop.set()
        try:
            # Unblock accept() with a self-connection.
            poke = socket.create_connection(self.address, timeout=0.5)
            poke.close()
        except OSError:
            pass
        self._sock.close()
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        if self._started and threading.current_thread() is not self._thread:
            self._thread.join(timeout=2.0)
        if self._exporter is not None:
            self._exporter.close()
            self._exporter = None

    def kill(self) -> None:
        """Die like ``kill -9``: sever everything, flush nothing.

        The journal needs no flushing — it is written ahead of every
        commit — so an abrupt close is exactly a process kill from the
        operators' point of view.  Used by the crash-restart fault and
        the failover drill.
        """
        self.close()

    def attach_exporter(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "HealthHTTPExporter":
        """Attach a health/metrics HTTP endpoint to this Master.

        ``/healthz`` merges the Master's occupancy snapshot (plus its
        dropped-request count) under ``sources.master``; the exporter is
        closed with the server.  A Master in read-only mode (journal
        failure) reports ``degraded`` and flips the endpoint to 503.
        """
        from ..obs.httpexport import HealthHTTPExporter

        if self._exporter is None:
            self._exporter = HealthHTTPExporter(
                health_sources={"master": self._health_source},
                host=host,
                port=port,
            ).start()
        return self._exporter

    def _health_source(self) -> Dict[str, object]:
        snapshot: Dict[str, object] = dict(self.master.status())
        snapshot["dropped_requests"] = self.dropped_requests
        snapshot["reaped_connections"] = self.reaped_connections
        snapshot["degraded"] = self._master_down() or bool(
            snapshot.get("read_only")
        )
        return snapshot

    def __enter__(self) -> "MasterServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request handling --------------------------------------------------

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                break
            if self._stop.is_set():
                conn.close()
                break
            with self._conns_lock:
                self._conns.add(conn)
            handler = threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            )
            handler.start()

    def _handle(self, conn: socket.socket) -> None:
        try:
            self._serve_connection(conn)
        finally:
            with self._conns_lock:
                self._conns.discard(conn)

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while True:
                try:
                    message = read_message(conn, timeout_s=self.recv_timeout_s)
                except socket.timeout:
                    self._reap_connection(conn)
                    return
                except (ProtocolError, OSError):
                    return
                if message is None:
                    return
                # Causal propagation: merge the caller's Lamport sample
                # before any event this request triggers is emitted, so
                # Master-side events order after the client-side send.
                ctx = TraceContext.from_wire(message.get("ctx"))
                rec = _obs.TRACE
                if rec is not None and ctx is not None:
                    rec.merge_clock(ctx.lam)
                with self._counters_lock:
                    self._requests_seen += 1
                    request_no = self._requests_seen
                if self._master_down():
                    # Outage window: vanish mid-exchange, as a crashed
                    # Master would — no error reply, just a dead socket.
                    # The drop is traced *before* the socket closes, so
                    # it sequences ahead of the client's retry events.
                    with self._counters_lock:
                        self._dropped_requests += 1
                    if rec is not None:
                        rec.emit(
                            EventType.MASTER_DROPPED,
                            req=message.get("type"),
                            **_ctx_fields(ctx),
                        )
                    metrics = _obs.METRICS
                    if metrics is not None:
                        metrics.counter(
                            "repro_master_dropped_total",
                            "requests dropped during Master outages",
                        ).inc()
                    logger.warning(
                        "master outage: dropping %r request mid-exchange",
                        message.get("type"),
                    )
                    return
                try:
                    response = self._dispatch(message)
                except (ProtocolError, OSError):
                    return
                if request_no in self._crash_points:
                    # Crash-restart fault: the mutation is applied and
                    # journaled, but the process dies before the reply
                    # leaves — the exact duplicate-assignment window
                    # the request-id journal closes.
                    self._emit_crash(request_no, message.get("type"), ctx)
                    self.kill()
                    return
                if ctx is not None:
                    response["ctx"] = self._reply_ctx(ctx).to_wire()
                try:
                    send_message(conn, response)
                except OSError:
                    return

    def _reap_connection(self, conn: socket.socket) -> None:
        with self._counters_lock:
            self._reaped_connections += 1
        rec = _obs.TRACE
        if rec is not None:
            rec.emit(
                EventType.MASTER_CONN_REAPED,
                timeout_s=self.recv_timeout_s,
            )
        metrics = _obs.METRICS
        if metrics is not None:
            metrics.counter(
                "repro_master_conns_reaped_total",
                "idle/half-open connections reaped by the recv timeout",
            ).inc()
        logger.warning(
            "reaping connection: no request within %.3f s",
            self.recv_timeout_s or 0.0,
        )

    def _reply_ctx(self, ctx: TraceContext) -> TraceContext:
        """The context echoed on a reply: server span, caller as parent.

        Carries a fresh Lamport sample so the client's receive merge
        orders its subsequent events after everything the Master did.
        Without an active recorder the caller's context bounces back
        unchanged (the clock cannot advance, but ids stay coherent).
        """
        rec = _obs.TRACE
        if rec is None:
            return ctx
        own = rec.context
        if own is not None:
            ctx = TraceContext(
                run_id=ctx.run_id,
                trace_id=ctx.trace_id,
                span_id=own.span_id,
                parent_span_id=ctx.span_id,
            )
        return ctx.with_lam(rec.tick())

    def _emit_crash(
        self,
        request_no: int,
        req_type: object,
        ctx: Optional[TraceContext] = None,
    ) -> None:
        rec = _obs.TRACE
        if rec is not None:
            rec.emit(
                EventType.MASTER_CRASH,
                at_request=request_no,
                req=req_type,
                **_ctx_fields(ctx),
            )
        metrics = _obs.METRICS
        if metrics is not None:
            metrics.counter(
                "repro_master_crashes_total",
                "injected Master crash-restart faults",
            ).inc()
        logger.warning(
            "injected master crash after request #%d (%r applied, "
            "reply withheld)",
            request_no,
            req_type,
        )

    def _master_down(self) -> bool:
        """Whether the fault plan places us inside a Master outage."""
        if self.fault_plan is None:
            return False
        return self.fault_plan.master_down_at(self.clock())

    @staticmethod
    def _error(message: str, code: str) -> Dict:
        return {"type": "error", "message": message, "code": code}

    def _dispatch(self, message: Dict) -> Dict:
        mtype = message.get("type")
        request_id = message.get("request_id")
        if request_id is not None:
            request_id = str(request_id)
        if mtype == "register":
            operator = message.get("operator", "")
            try:
                assignment = self.master.register(
                    str(operator), request_id=request_id
                )
            except ValueError as exc:
                return self._error(str(exc), "bad_request")
            except (RegionFullError, MasterReadOnlyError) as exc:
                return self._error(str(exc), exc.code)
            return assignment_to_wire(assignment)
        if mtype == "release":
            operator = str(message.get("operator", ""))
            try:
                held = self.master.release(operator, request_id=request_id)
            except MasterReadOnlyError as exc:
                return self._error(str(exc), exc.code)
            return {"type": "released", "operator": operator, "held": held}
        if mtype == "resume":
            operator = str(message.get("operator", ""))
            lease = str(message.get("lease", ""))
            try:
                assignment = self.master.resume(operator, lease)
            except LeaseError as exc:
                return self._error(str(exc), exc.code)
            response = assignment_to_wire(assignment)
            response["type"] = "resumed"
            return response
        if mtype == "status":
            snapshot = self.master.status()
            return {"type": "status_ok", **snapshot}
        return self._error(f"unknown message type {mtype!r}", "unknown_type")
