"""TCP server exposing the AlphaWAN Master node.

One thread per operator connection; the underlying
:class:`~repro.core.master.MasterNode` is already thread-safe.  Use as
a context manager::

    with MasterServer(MasterNode(grid, expected_networks=4)) as server:
        client = MasterClient(server.address)
        assignment = client.register("operator-1")
"""

from __future__ import annotations

import socket
import threading
from typing import Dict, Optional, Tuple

from .master import MasterNode, RegionFullError
from .protocol import (
    ProtocolError,
    assignment_to_wire,
    read_message,
    send_message,
)

__all__ = ["MasterServer"]


class MasterServer:
    """Threaded TCP front-end for a :class:`MasterNode`."""

    def __init__(
        self,
        master: MasterNode,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.master = master
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)
        self.address: Tuple[str, int] = self._sock.getsockname()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, name="alphawan-master", daemon=True
        )
        self._started = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "MasterServer":
        """Start accepting connections (idempotent)."""
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    def close(self) -> None:
        """Stop the server and release the listening socket."""
        self._stop.set()
        try:
            # Unblock accept() with a self-connection.
            poke = socket.create_connection(self.address, timeout=0.5)
            poke.close()
        except OSError:
            pass
        self._sock.close()
        if self._started:
            self._thread.join(timeout=2.0)

    def __enter__(self) -> "MasterServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request handling --------------------------------------------------

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                break
            if self._stop.is_set():
                conn.close()
                break
            handler = threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            )
            handler.start()

    def _handle(self, conn: socket.socket) -> None:
        with conn:
            while True:
                try:
                    message = read_message(conn)
                except (ProtocolError, OSError):
                    return
                if message is None:
                    return
                try:
                    response = self._dispatch(message)
                except (ProtocolError, OSError):
                    return
                try:
                    send_message(conn, response)
                except OSError:
                    return

    def _dispatch(self, message: Dict) -> Dict:
        mtype = message.get("type")
        if mtype == "register":
            operator = message.get("operator", "")
            try:
                assignment = self.master.register(str(operator))
            except (ValueError, RegionFullError) as exc:
                return {"type": "error", "message": str(exc)}
            return assignment_to_wire(assignment)
        if mtype == "release":
            operator = str(message.get("operator", ""))
            held = self.master.release(operator)
            return {"type": "released", "operator": operator, "held": held}
        if mtype == "status":
            snapshot = self.master.status()
            return {"type": "status_ok", **snapshot}
        return {"type": "error", "message": f"unknown message type {mtype!r}"}
