"""Operator-side client of the AlphaWAN Master (TCP).

Runs inside the operator's network server: registers the network,
obtains the misaligned channel assignment, and can release the slot on
decommissioning.  Round-trip latency is recorded — it is the
"operator-to-Master communication" term in the paper's Figure 17.
"""

from __future__ import annotations

import socket
import time
from typing import Dict, Optional, Tuple

from .master import Assignment
from .protocol import (
    ProtocolError,
    assignment_from_wire,
    read_message,
    send_message,
)

__all__ = ["MasterClient", "MasterRequestError"]


class MasterRequestError(Exception):
    """The Master rejected a request (e.g. region full)."""


class MasterClient:
    """A persistent connection to the Master node."""

    def __init__(
        self, address: Tuple[str, int], timeout_s: float = 5.0
    ) -> None:
        self.address = address
        self.timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None
        self.last_rtt_s: Optional[float] = None

    # -- connection management -------------------------------------------

    def connect(self) -> "MasterClient":
        """Open the TCP connection (idempotent)."""
        if self._sock is None:
            self._sock = socket.create_connection(
                self.address, timeout=self.timeout_s
            )
        return self

    def close(self) -> None:
        """Close the connection."""
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "MasterClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- requests ---------------------------------------------------------

    def _roundtrip(self, message: Dict) -> Dict:
        self.connect()
        assert self._sock is not None
        t0 = time.perf_counter()
        send_message(self._sock, message)
        response = read_message(self._sock)
        self.last_rtt_s = time.perf_counter() - t0
        if response is None:
            raise ProtocolError("master closed the connection")
        if response.get("type") == "error":
            raise MasterRequestError(response.get("message", "unknown error"))
        return response

    def register(self, operator: str) -> Assignment:
        """Register this operator; returns its channel assignment."""
        response = self._roundtrip({"type": "register", "operator": operator})
        if response.get("type") != "assignment":
            raise ProtocolError(f"unexpected response {response.get('type')!r}")
        return assignment_from_wire(response)

    def release(self, operator: str) -> bool:
        """Release this operator's slot; True if it was held."""
        response = self._roundtrip({"type": "release", "operator": operator})
        if response.get("type") != "released":
            raise ProtocolError(f"unexpected response {response.get('type')!r}")
        return bool(response.get("held"))

    def status(self) -> Dict:
        """Fetch the region occupancy snapshot."""
        response = self._roundtrip({"type": "status"})
        if response.get("type") != "status_ok":
            raise ProtocolError(f"unexpected response {response.get('type')!r}")
        return {k: v for k, v in response.items() if k != "type"}
