"""Operator-side client of the AlphaWAN Master (TCP).

Runs inside the operator's network server: registers the network,
obtains the misaligned channel assignment, and can release the slot on
decommissioning.  Round-trip latency is recorded — it is the
"operator-to-Master communication" term in the paper's Figure 17.

Resilience: with a :class:`~repro.faults.retry.RetryPolicy` the client
retries failed round-trips with exponential backoff + jitter under a
bounded deadline, transparently reconnecting after every transport
failure.  Registration is idempotent at the Master, so a Master restart
mid-exchange is survivable — the retry simply re-registers.  When the
budget is exhausted a :class:`~repro.faults.retry.MasterUnavailableError`
is raised so callers can fall back to a cached assignment.
"""

from __future__ import annotations

import logging
import random
import socket
import time
from typing import Callable, Dict, Optional, Tuple

from ..faults.retry import MasterUnavailableError, RetryPolicy
from ..obs import runtime as _obs
from ..obs.events import EventType
from .master import Assignment
from .protocol import (
    ProtocolError,
    assignment_from_wire,
    read_message,
    send_message,
)

logger = logging.getLogger(__name__)

__all__ = ["MasterClient", "MasterRequestError"]

# Transport-level failures worth a reconnect + retry.  MasterRequestError
# is excluded: the Master answered, it just said no.
_TRANSIENT_ERRORS = (OSError, ProtocolError)


class MasterRequestError(Exception):
    """The Master rejected a request (e.g. region full).

    Attributes:
        code: Machine-readable error code from the wire (``region_full``,
            ``degraded``, ``lease_stale``, ``unknown_operator``,
            ``bad_request``, ``unknown_type``).
    """

    def __init__(self, message: str, code: str = "error") -> None:
        super().__init__(message)
        self.code = code


class MasterClient:
    """A persistent connection to the Master node.

    Args:
        address: Master ``(host, port)``.
        timeout_s: Per-round-trip socket timeout (the bounded request
            deadline for a single attempt).
        retry: Optional retry policy; without one, every transport
            failure surfaces immediately (legacy behaviour) — but the
            dead socket is still dropped so the next call reconnects.
        retry_seed: Seed for the backoff jitter (deterministic runs).
        sleep: Injection point for the backoff sleep (tests pass a
            no-op or a virtual clock).
    """

    def __init__(
        self,
        address: Tuple[str, int],
        timeout_s: float = 5.0,
        retry: Optional[RetryPolicy] = None,
        retry_seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.address = address
        self.timeout_s = timeout_s
        self.retry = retry
        self._rng = random.Random(retry_seed)
        # Request-id stream, separate from the backoff jitter stream so
        # adding ids does not perturb existing deterministic backoffs.
        self._id_rng = random.Random(retry_seed ^ 0x5DEECE66D)
        self._request_seq = 0
        self._sleep = sleep
        self._sock: Optional[socket.socket] = None
        self.last_rtt_s: Optional[float] = None
        self.reconnects = 0
        self.retries = 0

    # -- connection management -------------------------------------------

    def connect(self) -> "MasterClient":
        """Open the TCP connection (idempotent)."""
        if self._sock is None:
            self._sock = socket.create_connection(
                self.address, timeout=self.timeout_s
            )
        return self

    def close(self) -> None:
        """Close the connection."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "MasterClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- requests ---------------------------------------------------------

    def _roundtrip_once(self, message: Dict) -> Dict:
        """One send/receive exchange over the current connection.

        Any transport failure (timeout, reset, protocol violation)
        drops the socket so the next attempt reconnects instead of
        reusing a dead connection.
        """
        reconnected = self._sock is None
        self.connect()
        if reconnected:
            self.reconnects += 1
        assert self._sock is not None
        rec = _obs.TRACE
        if rec is not None:
            # Causal propagation: attach (or refresh) the trace context
            # with a fresh Lamport sample on *every* attempt, so a retry
            # that reaches a restarted Master still sequences after the
            # events that preceded it.  Old servers ignore the key.
            ctx = rec.context
            if ctx is not None:
                message["ctx"] = ctx.with_lam(rec.tick()).to_wire()
            rec.emit(EventType.MASTER_REQUEST, req=message.get("type"))
        t0 = time.perf_counter()
        try:
            send_message(self._sock, message)
            response = read_message(self._sock)
        except _TRANSIENT_ERRORS:
            self.close()
            raise
        # Bind the reading locally: ``last_rtt_s`` is Optional (None
        # until the first round-trip) and must not leak into telemetry
        # sinks that require a float.
        rtt_wall_s = time.perf_counter() - t0
        self.last_rtt_s = rtt_wall_s
        if response is None:
            self.close()
            raise ProtocolError("master closed the connection")
        if rec is not None:
            # Lamport receive rule: fold the server's clock sample in so
            # subsequent local events order after the server-side ones.
            resp_ctx = response.get("ctx")
            if isinstance(resp_ctx, dict):
                rec.merge_clock(resp_ctx.get("lam"))
        metrics = _obs.METRICS
        if metrics is not None:
            metrics.histogram(
                "repro_master_rtt_seconds",
                "Master round-trip latency",
            ).observe(rtt_wall_s)
        if rec is not None:
            rec.emit(
                EventType.MASTER_RESPONSE,
                req=message.get("type"),
                rtt_wall_s=rtt_wall_s,
            )
        if response.get("type") == "error":
            raise MasterRequestError(
                str(response.get("message", "unknown error")),
                code=str(response.get("code", "error")),
            )
        return response

    def _roundtrip(self, message: Dict) -> Dict:
        if self.retry is None:
            return self._roundtrip_once(message)
        policy = self.retry
        deadline = time.monotonic() + policy.deadline_s
        last_error: Optional[Exception] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                return self._roundtrip_once(message)
            except _TRANSIENT_ERRORS as exc:
                last_error = exc
                if attempt == policy.max_attempts:
                    break
                backoff = policy.backoff_s(attempt, self._rng)
                if time.monotonic() + backoff >= deadline:
                    break
                self.retries += 1
                rec = _obs.TRACE
                if rec is not None:
                    rec.emit(
                        EventType.MASTER_RETRY,
                        req=message.get("type"),
                        attempt=attempt,
                        error=type(exc).__name__,
                    )
                metrics = _obs.METRICS
                if metrics is not None:
                    metrics.counter(
                        "repro_master_retries_total",
                        "Master round-trips retried after transport failure",
                    ).inc()
                logger.warning(
                    "master round-trip failed (attempt %d/%d): %s; retrying",
                    attempt,
                    policy.max_attempts,
                    exc,
                )
                self._sleep(backoff)
        rec = _obs.TRACE
        if rec is not None:
            rec.emit(
                EventType.MASTER_UNAVAILABLE,
                req=message.get("type"),
                attempts=policy.max_attempts,
            )
        logger.error(
            "master at %s unreachable after %d attempt(s): %s",
            self.address,
            policy.max_attempts,
            last_error,
        )
        raise MasterUnavailableError(
            f"master at {self.address} unreachable after {policy.max_attempts}"
            f" attempt(s): {last_error}"
        ) from last_error

    def _next_request_id(self, operator: str) -> str:
        """A fresh id for one logical request (reused across retries)."""
        self._request_seq += 1
        nonce = self._id_rng.getrandbits(48)
        return f"{operator}:{self._request_seq}:{nonce:012x}"

    def register(self, operator: str) -> Assignment:
        """Register this operator; returns its channel assignment.

        Exactly-once over a lossy wire: the request carries a
        client-generated ``request_id`` built once per logical call, so
        every retry of this exchange re-sends the *same* id.  The
        Master journals completions by id — a retry that reaches a
        restarted Master (which already applied the original) is
        answered from the journal instead of allocating a second slot.
        """
        message = {
            "type": "register",
            "operator": operator,
            "request_id": self._next_request_id(operator),
        }
        response = self._roundtrip(message)
        if response.get("type") != "assignment":
            raise ProtocolError(f"unexpected response {response.get('type')!r}")
        return assignment_from_wire(response)

    def release(self, operator: str) -> bool:
        """Release this operator's slot; True if it was held.

        Carries a ``request_id`` like :meth:`register`, so a retried
        release reports the original ``held`` outcome instead of the
        second attempt's inevitable ``False``.
        """
        message = {
            "type": "release",
            "operator": operator,
            "request_id": self._next_request_id(operator),
        }
        response = self._roundtrip(message)
        if response.get("type") != "released":
            raise ProtocolError(f"unexpected response {response.get('type')!r}")
        return bool(response.get("held"))

    def resume(self, operator: str, lease: str) -> Assignment:
        """Revalidate a held lease after a disconnect or Master restart.

        Read-only at the Master (works even in degraded mode).  Returns
        the current assignment — whose ``epoch`` reveals whether the
        Master has been through a recovery since the lease was minted.
        Raises :class:`MasterRequestError` with code ``lease_stale`` or
        ``unknown_operator`` when the lease no longer matches.
        """
        response = self._roundtrip(
            {"type": "resume", "operator": operator, "lease": lease}
        )
        if response.get("type") != "resumed":
            raise ProtocolError(f"unexpected response {response.get('type')!r}")
        return assignment_from_wire(response)

    def status(self) -> Dict:
        """Fetch the region occupancy snapshot."""
        response = self._roundtrip({"type": "status"})
        if response.get("type") != "status_ok":
            raise ProtocolError(f"unexpected response {response.get('type')!r}")
        return {k: v for k, v in response.items() if k != "type"}
