"""Intra-network channel planning (AlphaWAN Strategies 1, 2, 7).

Builds a :class:`~repro.core.cp_problem.CPInput` from a deployed
network, seeds the evolutionary solver with a greedy construction, and
applies the resulting plan: heterogeneous per-gateway channel windows
(Strategies 1+2) and per-node channel/data-rate/power assignments that
steer users away from congested gateways (Strategy 7).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..gateway.gateway import Gateway
from ..node.device import EndDevice
from ..phy.channels import Channel
from ..phy.link import DEFAULT_TIERS, DistanceTier
from ..phy.lora import DR_TO_SF, SNR_THRESHOLD_DB
from ..sim.scenario import Network
from ..sim.topology import LinkBudget
from .cp_problem import CPEvaluator, CPInput, CPSolution, GatewaySpec, NodeSpec
from .evolutionary import GAConfig, GAResult, evolve

__all__ = ["PlannerConfig", "PlanOutcome", "build_cp_input", "IntraNetworkPlanner"]

_NUM_DRS = 6


@dataclass(frozen=True)
class PlannerConfig:
    """Planner variants and solver hyper-parameters.

    Attributes:
        optimize_channel_count: Strategy 1 — let the solver shrink the
            number of operating channels per gateway.  When False, every
            gateway keeps its hardware maximum (the paper's
            "AlphaWAN (Strategy 1 disabled)" arm).
        optimize_nodes: Strategy 7 node side — let the solver move nodes
            across channels/tiers.  When False only gateway windows are
            planned (the Figure 12c "w/o node side" arm).
        tiers: Distance-tier mapping table (ADR/TPC discretization).
        snr_margin_db: Safety margin above the demodulation threshold a
            link must clear to count as reachable (covers interference
            and fading, like the ADR installation margin).
        ga: Evolutionary-engine settings.
    """

    optimize_channel_count: bool = True
    optimize_nodes: bool = True
    tiers: Tuple[DistanceTier, ...] = DEFAULT_TIERS
    snr_margin_db: float = 3.0
    ga: GAConfig = field(default_factory=GAConfig)
    # Objective-weight overrides (None keeps the calibrated defaults);
    # used by the ablation benchmarks.
    cell_overload_weight: Optional[float] = None
    redundancy_weight: Optional[float] = None
    unserved_cost: Optional[float] = None


def build_cp_input(
    network: Network,
    channels: Sequence[Channel],
    link: LinkBudget,
    traffic: Optional[Mapping[int, float]] = None,
    tiers: Tuple[DistanceTier, ...] = DEFAULT_TIERS,
    snr_margin_db: float = 3.0,
) -> CPInput:
    """Assemble the CP problem instance for one network.

    Reachability ``r[i][j][l]`` comes from the link budget: node ``i``
    reaches gateway ``j`` at tier ``l`` when the SNR at the tier's
    transmit power clears the tier's data-rate demodulation threshold.

    Args:
        network: The deployment to plan.
        channels: The spectrum the operator may use (its channel grid,
            or the misaligned sub-grid assigned by the Master).
        link: Link-budget calculator for the area.
        traffic: Optional per-node expected concurrent load ``u_i``
            (defaults to 1.0: the concurrent-burst worst case).
        tiers: Distance-tier table.
    """
    gateways = [
        GatewaySpec(
            gateway_id=gw.gateway_id,
            decoders=gw.model.decoders,
            max_channels=gw.model.max_channels,
            max_span_channels=max(
                1, int(gw.model.rx_spectrum_hz // 200_000)
            ),
        )
        for gw in network.gateways
    ]
    nodes: List[NodeSpec] = []
    for dev in network.devices:
        reach_per_tier: List[Tuple[int, ...]] = []
        for tier in tiers:
            threshold = SNR_THRESHOLD_DB[DR_TO_SF[tier.dr]] + snr_margin_db
            reachable = tuple(
                j
                for j, gw in enumerate(network.gateways)
                if link.snr_db(tier.tx_power_dbm, dev.position, gw.position)
                >= threshold
            )
            reach_per_tier.append(reachable)
        u = 1.0 if traffic is None else float(traffic.get(dev.node_id, 0.0))
        nodes.append(
            NodeSpec(node_id=dev.node_id, traffic=u, reach=tuple(reach_per_tier))
        )
    return CPInput(
        gateways=gateways, nodes=nodes, channels=list(channels), tiers=tiers
    )


def _greedy_windows(
    cp: CPInput, optimize_channel_count: bool
) -> List[Tuple[int, int]]:
    """Capacity-matched, tiled gateway windows (Strategies 1+2 seed).

    Window size is chosen so the window's orthogonal capacity
    (channels x 6 DRs) just exceeds the gateway's decoder pool —
    concentrating decoders on few channels without stranding them —
    and starts are spread across the spectrum so co-located gateways
    observe distinct packet subsets.
    """
    num_ch = len(cp.channels)
    windows: List[Tuple[int, int]] = []
    num_gw = len(cp.gateways)
    for j, gw in enumerate(cp.gateways):
        max_count = min(gw.max_channels, gw.max_span_channels, num_ch)
        if optimize_channel_count:
            # Cover the spectrum with (near-)disjoint windows: overlap
            # duplicates decoder load (a packet seizes a decoder at every
            # gateway that hears it), so disjoint tiling is the seed.
            count = min(max_count, max(1, -(-num_ch // num_gw)))
        else:
            count = max_count
        if num_ch > count:
            start = (j * count) % (num_ch - count + 1)
        else:
            start = 0
        windows.append((start, count))
    return windows


def _greedy_nodes(
    cp: CPInput,
    windows: Sequence[Tuple[int, int]],
) -> Tuple[List[int], List[int]]:
    """Load-balancing node assignment over the given gateway windows.

    Nodes (fewest-options first) pick the (channel, tier) that avoids
    (channel, DR) cell collisions and minimizes the decoder overload it
    creates across every gateway that would hear the packet.
    """
    num_ch = len(cp.channels)
    cell_load = np.zeros((num_ch, _NUM_DRS))
    gw_load = np.zeros(len(cp.gateways))
    decoders = np.array([g.decoders for g in cp.gateways], dtype=float)
    # Channel -> gateways whose window contains it.
    ch_gws: List[List[int]] = [[] for _ in range(num_ch)]
    for j, (start, count) in enumerate(windows):
        for ch in range(start, min(start + count, num_ch)):
            ch_gws[ch].append(j)

    order = sorted(
        range(len(cp.nodes)),
        key=lambda i: sum(len(r) for r in cp.nodes[i].reach),
    )
    node_ch = [0] * len(cp.nodes)
    node_tier = [0] * len(cp.nodes)
    for i in order:
        node = cp.nodes[i]
        u = node.traffic
        # Cell preference: an empty cell is best; among occupied cells,
        # prefer the *most* loaded (a collision there is already sunk,
        # while touching a singleton cell kills a healthy packet too).
        best = None  # (occupied, -cell_load, overload_delta, tier_idx, ch)
        for l, tier in enumerate(cp.tiers):
            reach = set(node.reach[l])
            if not reach:
                continue
            dr = int(tier.dr)
            candidate_chs = {
                ch
                for j in reach
                for ch in range(windows[j][0], min(windows[j][0] + windows[j][1], num_ch))
            }
            for ch in candidate_chs:
                affected = [j for j in ch_gws[ch] if j in reach]
                if not affected:
                    continue
                delta = sum(
                    max(0.0, gw_load[j] + u - decoders[j])
                    - max(0.0, gw_load[j] - decoders[j])
                    for j in affected
                )
                # Redundant gateways beyond the first waste decoders.
                delta += 0.25 * (len(affected) - 1) * u
                load = cell_load[ch, dr]
                # A cell stays collision-free while its expected
                # concurrent load (including this node) is within one
                # packet; beyond that, adding to it means a collision.
                collides = 1 if load + u > 1.0 + 1e-9 else 0
                key = (collides, -load if collides else load, delta, l, ch)
                if best is None or key < best:
                    best = key
            if best is not None and best[0] == 0 and best[2] == 0.0:
                break  # perfect slot found at the cheapest tier
        if best is None:
            continue  # unreachable node; repair/penalty handles it
        if best[0] == 1:
            # Every reachable cell is occupied: serving would collide.
            # Park the node on an unserved channel instead — its packets
            # are truncated by every front-end and cost no decoders.
            parked = [ch for ch in range(num_ch) if not ch_gws[ch]]
            if parked:
                node_ch[i] = parked[i % len(parked)]
                node_tier[i] = 0
                continue
        _, _, _, l, ch = best
        node_ch[i] = ch
        node_tier[i] = l
        dr = int(cp.tiers[l].dr)
        cell_load[ch, dr] += u
        for j in ch_gws[ch]:
            if j in set(node.reach[l]):
                gw_load[j] += u
    return node_ch, node_tier


def _make_repair(evaluator: CPEvaluator):
    """Constraint repair: reconnect nodes stranded by the current windows."""
    cp = evaluator.cp

    def repair(genome: List[int], rng: random.Random) -> List[int]:
        if evaluator.fixed_nodes is not None:
            return genome
        starts, counts, node_ch, node_tier = evaluator.split(genome)
        link = evaluator.link_matrix(starts, counts, node_ch, node_tier)
        disconnected = np.flatnonzero(~link.any(axis=1))
        if disconnected.size == 0:
            return genome
        # Only reconnect to gateways that still have spare decoders:
        # parking excess nodes is a legitimate (soft-penalized) choice
        # when capacity is exhausted, and forcing them back would poison
        # the serving pools.
        loads = evaluator.traffic @ link
        spare = loads < evaluator.decoders
        out = list(genome)
        base = 2 * evaluator.num_gw
        for i in disconnected:
            node = cp.nodes[i]
            options: List[Tuple[int, int]] = []
            for l in range(evaluator.num_tiers):
                for j in node.reach[l]:
                    if not spare[j]:
                        continue
                    start, count = int(starts[j]), int(counts[j])
                    for ch in range(start, min(start + count, evaluator.num_channels)):
                        options.append((ch, l))
                if options:
                    break  # cheapest tier that connects
            if options:
                ch, l = rng.choice(options)
                out[base + 2 * i] = ch
                out[base + 2 * i + 1] = l
        return out

    return repair


@dataclass
class PlanOutcome:
    """Result of one planning run."""

    solution: CPSolution
    cp_input: CPInput
    solve_time_s: float
    ga_result: GAResult


class IntraNetworkPlanner:
    """Plans and applies channel configurations for one network."""

    def __init__(
        self,
        network: Network,
        channels: Sequence[Channel],
        link: Optional[LinkBudget] = None,
        config: Optional[PlannerConfig] = None,
        traffic: Optional[Mapping[int, float]] = None,
    ) -> None:
        self.network = network
        self.channels = list(channels)
        self.link = link or LinkBudget()
        self.config = config or PlannerConfig()
        self.traffic = traffic

    def plan(self) -> PlanOutcome:
        """Solve the CP problem (timed, for the Figure 17 latency study)."""
        t0 = time.perf_counter()
        cp = build_cp_input(
            self.network,
            self.channels,
            self.link,
            traffic=self.traffic,
            tiers=self.config.tiers,
            snr_margin_db=self.config.snr_margin_db,
        )
        fixed = None
        if not self.config.optimize_nodes:
            fixed = self._current_node_assignment(cp)
        evaluator = CPEvaluator(
            cp,
            fixed_nodes=fixed,
            cell_overload_weight=self.config.cell_overload_weight,
            redundancy_weight=self.config.redundancy_weight,
            unserved_cost=self.config.unserved_cost,
        )

        seeds: List[List[int]] = []
        for windows in self._seed_windows(cp):
            seed_genome: List[int] = []
            for start, count in windows:
                seed_genome.extend((start, count))
            if fixed is None:
                node_ch, node_tier = _greedy_nodes(cp, windows)
                for ch, tier in zip(node_ch, node_tier):
                    seed_genome.extend((ch, tier))
            seeds.append(seed_genome)

        bounds = evaluator.bounds()
        if not self.config.optimize_channel_count:
            # Pin every count gene at its maximum (8 channels on COTS HW).
            bounds = list(bounds)
            for j in range(len(cp.gateways)):
                hi = bounds[2 * j + 1][1]
                bounds[2 * j + 1] = (hi, hi)

        ga_result = evolve(
            bounds,
            evaluator.fitness,
            config=self.config.ga,
            seeds=seeds,
            repair=_make_repair(evaluator),
        )
        best_genome = ga_result.best_genome
        if fixed is None:
            # Refinement: the GA evolves windows and node genes jointly,
            # so the final windows may have drifted away from the node
            # assignment.  Re-run the greedy node construction against
            # the winning windows and keep the better of the two.
            starts, counts, _, _ = evaluator.split(best_genome)
            final_windows = [
                (int(s), int(c)) for s, c in zip(starts, counts)
            ]
            node_ch, node_tier = _greedy_nodes(cp, final_windows)
            refined: List[int] = []
            for start, count in final_windows:
                refined.extend((start, count))
            for ch, tier in zip(node_ch, node_tier):
                refined.extend((ch, tier))
            if evaluator.fitness(refined) > ga_result.best_fitness:
                best_genome = refined
        solution = evaluator.decode(best_genome)
        elapsed = time.perf_counter() - t0
        return PlanOutcome(
            solution=solution,
            cp_input=cp,
            solve_time_s=elapsed,
            ga_result=ga_result,
        )

    def _seed_windows(self, cp: CPInput) -> List[List[Tuple[int, int]]]:
        """Greedy gateway-window variants to seed the population."""
        variants = [_greedy_windows(cp, self.config.optimize_channel_count)]
        if self.config.optimize_channel_count:
            # Capacity-matched variant: window capacity (channels x DRs)
            # just above the decoder pool, regardless of coverage.
            num_ch = len(cp.channels)
            alt: List[Tuple[int, int]] = []
            for j, gw in enumerate(cp.gateways):
                max_count = min(gw.max_channels, gw.max_span_channels, num_ch)
                count = min(max_count, max(1, -(-gw.decoders // _NUM_DRS)))
                if num_ch > count:
                    start = (j * count) % (num_ch - count + 1)
                else:
                    start = 0
                alt.append((start, count))
            if alt != variants[0]:
                variants.append(alt)
        return variants

    def _current_node_assignment(
        self, cp: CPInput
    ) -> Tuple[List[int], List[int]]:
        """Freeze node genes at the devices' current configuration."""
        ch_index: Dict[float, int] = {
            c.center_hz: i for i, c in enumerate(self.channels)
        }
        dr_to_tier = {int(t.dr): l for l, t in enumerate(self.config.tiers)}
        node_ch: List[int] = []
        node_tier: List[int] = []
        for dev in self.network.devices:
            node_ch.append(ch_index.get(dev.channel.center_hz, 0))
            node_tier.append(dr_to_tier.get(int(dev.dr), 0))
        return node_ch, node_tier

    def apply(self, outcome: PlanOutcome) -> None:
        """Push the plan to gateways and end devices."""
        cp = outcome.cp_input
        for j, gw in enumerate(self.network.gateways):
            chans = outcome.solution.gateway_channels(cp, j)
            gw.configure(chans)
        if self.config.optimize_nodes:
            for i, dev in enumerate(self.network.devices):
                ch = cp.channels[outcome.solution.node_channels[i]]
                tier = cp.tiers[outcome.solution.node_tiers[i]]
                dev.apply_config(
                    channel=ch, dr=tier.dr, tx_power_dbm=tier.tx_power_dbm
                )

    def plan_and_apply(self) -> PlanOutcome:
        """Convenience: plan then apply."""
        outcome = self.plan()
        self.apply(outcome)
        return outcome
