"""The intra-network Channel Planning (CP) problem (paper section 4.3.1).

Formalizes the triplet (GW, ND, CH) with distance tiers DR, the coverage
tensor ``r[i][j][l]``, per-gateway resource constants (decoders ``C_j``,
channel budget ``P_j``, radio span ``B_j``), and node traffic ``u_i``.
The solution assigns every gateway a contiguous channel window and every
node a (channel, tier) pair; the objective is the traffic-weighted sum
of per-node packet-loss risks, with a secondary penalty for overloading
a single (channel, data-rate) cell (channel contention).

The problem is a knapsack variant (NP-hard); :mod:`.intra_planner` runs
the evolutionary engine over the encoding defined here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..phy.channels import Channel
from ..phy.link import DEFAULT_TIERS, DistanceTier

__all__ = ["GatewaySpec", "NodeSpec", "CPInput", "CPSolution", "CPEvaluator"]


@dataclass(frozen=True)
class GatewaySpec:
    """Per-gateway constants: decoders ``C_j``, channels ``P_j``, span ``B_j``."""

    gateway_id: int
    decoders: int
    max_channels: int
    max_span_channels: int  # B_j expressed in grid slots


@dataclass(frozen=True)
class NodeSpec:
    """Per-node constants: traffic ``u_i`` and tier-wise reachability."""

    node_id: int
    traffic: float  # expected concurrent load u_i within the window
    # reach[l] = indices of gateways reachable when using tier l.
    reach: Tuple[Tuple[int, ...], ...]


@dataclass
class CPInput:
    """A complete CP problem instance."""

    gateways: List[GatewaySpec]
    nodes: List[NodeSpec]
    channels: List[Channel]
    tiers: Tuple[DistanceTier, ...] = DEFAULT_TIERS

    def __post_init__(self) -> None:
        if not self.gateways:
            raise ValueError("CP needs at least one gateway")
        if not self.channels:
            raise ValueError("CP needs at least one channel")
        for node in self.nodes:
            if len(node.reach) != len(self.tiers):
                raise ValueError(
                    f"node {node.node_id} has {len(node.reach)} reach sets "
                    f"but there are {len(self.tiers)} tiers"
                )


@dataclass
class CPSolution:
    """A decoded CP decision.

    Attributes:
        gateway_windows: Per-gateway (start_channel_index, count).
        node_channels: Per-node channel index.
        node_tiers: Per-node distance-tier index.
        risk: Objective value (lower is better).
        connectivity_violations: Nodes left without any serving gateway.
    """

    gateway_windows: List[Tuple[int, int]]
    node_channels: List[int]
    node_tiers: List[int]
    risk: float
    connectivity_violations: int

    def gateway_channels(self, cp: CPInput, j: int) -> List[Channel]:
        """Materialize gateway ``j``'s channel window."""
        start, count = self.gateway_windows[j]
        return list(cp.channels[start : start + count])


# The objective is expressed in *expected lost packets*, so every term
# is a per-packet loss probability weighted by traffic.  This keeps the
# solver's fitness directly comparable to measured deliveries and makes
# the trade-offs between serving, colliding, and parking well-posed.
#
# Cost per unit of unserved traffic (a node with no serving gateway).
# The paper states connectivity as a hard constraint; we soften it so
# that, when offered demand exceeds total decoder capacity, the solver
# can deliberately park excess users on unserved channels — where their
# packets are truncated by every front-end and consume no decoders —
# instead of poisoning the decoder pools that serve everyone else.
UNSERVED_COST = 1.0
# Per-packet cost inside a collided (channel, DR) cell: slightly above
# a sure loss so collisions are never preferred over parking (they also
# waste the colliding partner and a decoder).
CELL_OVERLOAD_WEIGHT = 1.2
# Per extra gateway hearing a packet: decoder occupancy without a
# delivery (section 3.2).  Small: redundancy is only traded away when
# it costs nothing else.
REDUNDANCY_WEIGHT = 0.05


class CPEvaluator:
    """Vectorized evaluation of CP genomes.

    Genome layout (all integers)::

        [gw0_start, gw0_count, gw1_start, gw1_count, ...,
         node0_channel, node0_tier, node1_channel, node1_tier, ...]

    ``count`` genes range 1..min(P_j, span, num_channels); ``start``
    genes range over valid window starts.

    When ``fixed_nodes`` is given (the "without node-side cooperation"
    variant of Strategy 7), the genome contains only the gateway genes
    and node (channel, tier) assignments stay at the provided values.
    """

    def __init__(
        self,
        cp: CPInput,
        fixed_nodes: Optional[Tuple[Sequence[int], Sequence[int]]] = None,
        cell_overload_weight: Optional[float] = None,
        redundancy_weight: Optional[float] = None,
        unserved_cost: Optional[float] = None,
    ) -> None:
        self.cp = cp
        self.cell_overload_weight = (
            CELL_OVERLOAD_WEIGHT
            if cell_overload_weight is None
            else cell_overload_weight
        )
        self.redundancy_weight = (
            REDUNDANCY_WEIGHT if redundancy_weight is None else redundancy_weight
        )
        self.unserved_cost = (
            UNSERVED_COST if unserved_cost is None else unserved_cost
        )
        if fixed_nodes is not None:
            ch, tiers = fixed_nodes
            if len(ch) != len(cp.nodes) or len(tiers) != len(cp.nodes):
                raise ValueError("fixed_nodes arrays must match the node count")
            self.fixed_nodes: Optional[Tuple[np.ndarray, np.ndarray]] = (
                np.asarray(ch, dtype=int),
                np.asarray(tiers, dtype=int),
            )
        else:
            self.fixed_nodes = None
        self.num_gw = len(cp.gateways)
        self.num_nodes = len(cp.nodes)
        self.num_channels = len(cp.channels)
        self.num_tiers = len(cp.tiers)
        # reach[l, i, j] boolean tensor.
        self.reach = np.zeros(
            (self.num_tiers, self.num_nodes, self.num_gw), dtype=bool
        )
        for i, node in enumerate(cp.nodes):
            for l, gw_ids in enumerate(node.reach):
                for j in gw_ids:
                    self.reach[l, i, j] = True
        self.traffic = np.array([n.traffic for n in cp.nodes], dtype=float)
        self.decoders = np.array([g.decoders for g in cp.gateways], dtype=float)
        # DR index per tier (for the cell-overload penalty).
        self.tier_dr = np.array([int(t.dr) for t in cp.tiers], dtype=int)

    # -- genome helpers -------------------------------------------------

    def bounds(self) -> List[Tuple[int, int]]:
        """Per-gene bounds for the evolutionary engine."""
        out: List[Tuple[int, int]] = []
        for g in self.cp.gateways:
            max_count = min(g.max_channels, g.max_span_channels, self.num_channels)
            out.append((0, self.num_channels - 1))  # start (clamped in decode)
            out.append((1, max_count))  # count
        if self.fixed_nodes is None:
            for _ in self.cp.nodes:
                out.append((0, self.num_channels - 1))  # node channel
                out.append((0, self.num_tiers - 1))  # node tier
        return out

    def split(self, genome: Sequence[int]) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Decode a genome into (starts, counts, node_channels, node_tiers)."""
        g = np.asarray(genome, dtype=int)
        gw_part = g[: 2 * self.num_gw].reshape(self.num_gw, 2)
        if self.fixed_nodes is not None:
            node_ch, node_tier = self.fixed_nodes
        else:
            node_part = g[2 * self.num_gw :].reshape(self.num_nodes, 2)
            node_ch, node_tier = node_part[:, 0], node_part[:, 1]
        counts = np.clip(gw_part[:, 1], 1, None)
        # Clamp the window inside the grid.
        starts = np.minimum(gw_part[:, 0], self.num_channels - counts)
        starts = np.maximum(starts, 0)
        return starts, counts, node_ch, node_tier

    # -- evaluation ------------------------------------------------------

    def link_matrix(
        self,
        starts: np.ndarray,
        counts: np.ndarray,
        node_ch: np.ndarray,
        node_tier: np.ndarray,
    ) -> np.ndarray:
        """``link[i, j]`` — node i can deliver through gateway j."""
        # Channel membership: start_j <= ch_i < start_j + count_j.
        ch = node_ch[:, None]
        in_window = (ch >= starts[None, :]) & (ch < (starts + counts)[None, :])
        reach_sel = self.reach[node_tier, np.arange(self.num_nodes), :]
        return in_window & reach_sel

    def risk(self, genome: Sequence[int]) -> Tuple[float, int]:
        """Objective value and connectivity violations for a genome."""
        starts, counts, node_ch, node_tier = self.split(genome)
        link = self.link_matrix(starts, counts, node_ch, node_tier)

        # Gateway load k_j, overload phi_j, and per-packet loss
        # probability at the gateway: of k_j contending packets, the
        # phi_j beyond the decoder pool are dropped, uniformly at random
        # over lock-on order — so each packet loses with phi_j / k_j.
        k = self.traffic @ link  # (G,)
        phi = np.maximum(k - self.decoders, 0.0)
        gw_loss = np.where(k > 0.0, phi / np.maximum(k, 1e-9), 0.0)

        # Node risk Phi_i = min over serving gateways (the paper's risk,
        # normalized to a loss probability).
        big = np.inf
        risk_per_node = np.where(link, gw_loss[None, :], big)
        node_risk = risk_per_node.min(axis=1)
        disconnected = ~np.isfinite(node_risk)
        violations = int(disconnected.sum())
        node_risk = np.where(disconnected, 0.0, node_risk)

        total = float((self.traffic * node_risk).sum())
        total += self.unserved_cost * float(self.traffic[disconnected].sum())

        # Channel contention: concurrent load sharing one (channel, DR)
        # cell collides pairwise.  The expected collision cost in a cell
        # is ~2x the pairwise product of its members' concurrent loads
        # (each packet is lost when it overlaps a partner), capped by
        # the cell's total load (one cannot lose more than everything).
        # For unit burst loads this reduces to "a multiply-occupied cell
        # loses its whole load"; for fractional duty-cycle loads it
        # grades smoothly, rewarding spreading across channels and DRs.
        dr = self.tier_dr[node_tier]
        cell = node_ch * 6 + dr
        num_cells = self.num_channels * 6
        load = np.bincount(cell, weights=self.traffic, minlength=num_cells)
        sumsq = np.bincount(
            cell, weights=self.traffic * self.traffic, minlength=num_cells
        )
        pairs = np.maximum(load * load - sumsq, 0.0)  # 2 * sum_{i<j} u_i u_j
        collided = np.minimum(load, pairs).sum()
        total += self.cell_overload_weight * float(collided)

        # Redundant decoder occupancy: gateways beyond the first that
        # hear a packet consume decoders without adding deliveries.
        links_per_node = link.sum(axis=1)
        redundancy = float(
            (self.traffic * np.maximum(links_per_node - 1, 0)).sum()
        )
        total += self.redundancy_weight * redundancy
        return total, violations

    def fitness(self, genome: Sequence[int]) -> float:
        """Fitness for the GA (negated risk)."""
        total, _ = self.risk(genome)
        return -total

    def decode(self, genome: Sequence[int]) -> CPSolution:
        """Decode a genome into a full :class:`CPSolution`."""
        starts, counts, node_ch, node_tier = self.split(genome)
        total, violations = self.risk(genome)
        return CPSolution(
            gateway_windows=[(int(s), int(c)) for s, c in zip(starts, counts)],
            node_channels=[int(c) for c in node_ch],
            node_tiers=[int(t) for t in node_tier],
            risk=total,
            connectivity_violations=violations,
        )
