"""Traffic estimator: restore per-node demand from gateway logs.

AlphaWAN's second network-server module (section 4.3.3).  It combines
records across gateways (dedup), slices them into time windows,
estimates each node's expected *concurrent load* (packet rate times
airtime — the ``u_i`` of the CP problem), and aggressively selects the
high-demand windows so the computed channel plan can carry the
ever-increasing peak demand, not the average.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..netserver.records import UplinkRecord
from ..phy.lora import DataRate, DR_TO_SF, time_on_air_s

__all__ = ["WindowEstimate", "TrafficEstimator"]


@dataclass(frozen=True)
class WindowEstimate:
    """Per-node concurrent-load estimate for one time window."""

    start_s: float
    width_s: float
    node_load: Mapping[int, float]

    @property
    def total_load(self) -> float:
        """Aggregate expected concurrent packets in this window."""
        return sum(self.node_load.values())


class TrafficEstimator:
    """Window-based demand estimation over deduped uplink records."""

    def __init__(self, window_s: float = 600.0) -> None:
        if window_s <= 0:
            raise ValueError("window width must be positive")
        self.window_s = window_s

    @staticmethod
    def dedup(records: Iterable[UplinkRecord]) -> List[UplinkRecord]:
        """Collapse multi-gateway copies of the same uplink."""
        seen = set()
        out: List[UplinkRecord] = []
        for rec in records:
            key = rec.key()
            if key in seen:
                continue
            seen.add(key)
            out.append(rec)
        return out

    def windows(self, records: Sequence[UplinkRecord]) -> List[WindowEstimate]:
        """Slice the record stream into per-window load estimates.

        A node's load contribution in a window is ``count * airtime /
        window`` — the fraction of the window it spends on air, i.e.
        the expected number of its packets in flight at a random
        instant, scaled to the window.  For planning against bursts the
        estimator reports ``count * airtime`` aggregated per window
        width, which upper-bounds simultaneous demand.
        """
        deduped = self.dedup(records)
        if not deduped:
            return []
        start = min(r.timestamp_s for r in deduped)
        buckets: Dict[int, Dict[int, float]] = defaultdict(lambda: defaultdict(float))
        for rec in deduped:
            idx = int((rec.timestamp_s - start) // self.window_s)
            airtime = time_on_air_s(
                rec.payload_bytes, DR_TO_SF[DataRate(rec.dr)]
            )
            buckets[idx][rec.node_id] += airtime / self.window_s
        out = []
        for idx in sorted(buckets):
            out.append(
                WindowEstimate(
                    start_s=start + idx * self.window_s,
                    width_s=self.window_s,
                    node_load=dict(buckets[idx]),
                )
            )
        return out

    def peak_demand(
        self,
        records: Sequence[UplinkRecord],
        top_k: int = 3,
    ) -> Dict[int, float]:
        """Per-node load from the ``top_k`` highest-demand windows.

        This is the "aggressively use samples with high capacity
        demand" selection: for every node, take its maximum load across
        the selected peak windows, so the CP solver plans for the worst
        observed concurrency rather than the mean.
        """
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        estimates = self.windows(records)
        if not estimates:
            return {}
        peaks = sorted(estimates, key=lambda w: w.total_load, reverse=True)
        selected = peaks[:top_k]
        demand: Dict[int, float] = {}
        for window in selected:
            for node_id, load in window.node_load.items():
                demand[node_id] = max(demand.get(node_id, 0.0), load)
        return demand
