"""Commissioning: push a channel plan through the real LoRaWAN MAC path.

``IntraNetworkPlanner.apply`` sets device attributes directly (fine for
simulation studies); this module performs the same reconfiguration the
way a deployment would — per-device ``NewChannelReq`` + ``LinkADRReq``
downlinks built by the server MAC, parsed, verified (MIC), and applied
by the device MAC, with the answers checked on the way back.  This is
the end-to-end proof that AlphaWAN's plans are expressible in standard
LoRaWAN commands (the paper's deployability criterion 1).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..lorawan.mac_commands import LinkADRAns, NewChannelAns, decode_commands
from ..lorawan.stack import MAC_PORT, DeviceMac, ServerMac
from ..sim.scenario import Network
from .intra_planner import PlanOutcome

__all__ = ["CommissioningReport", "commission_network", "apply_plan_via_mac"]


@dataclass
class CommissioningReport:
    """Outcome of a MAC-path configuration rollout."""

    devices_configured: int = 0
    commands_sent: int = 0
    rejected: List[int] = field(default_factory=list)  # node ids

    @property
    def fully_accepted(self) -> bool:
        """Whether every device acknowledged every command."""
        return not self.rejected


def _app_key_for(network_id: int, node_id: int) -> bytes:
    """Deterministic per-device root key (stands in for provisioning)."""
    return hashlib.sha256(
        f"appkey:{network_id}:{node_id}".encode()
    ).digest()[:16]


def commission_network(network: Network) -> Tuple[ServerMac, Dict[int, DeviceMac]]:
    """Join every device of a network (key derivation + DevAddr)."""
    server = ServerMac(nwk_id=network.network_id & 0x7F)
    device_macs: Dict[int, DeviceMac] = {}
    for dev in network.devices:
        mac = server.join(
            dev,
            app_key=_app_key_for(network.network_id, dev.node_id),
            dev_nonce=dev.node_id & 0xFFFF,
        )
        device_macs[dev.node_id] = mac
    return server, device_macs


def apply_plan_via_mac(
    network: Network,
    outcome: PlanOutcome,
) -> CommissioningReport:
    """Roll a CP solution out over the LoRaWAN MAC instead of direct pokes.

    Gateways are configured through their (backhaul) agents as before;
    every end device receives its channel/DR/power assignment as framed,
    MIC-protected MAC commands and must acknowledge them.
    """
    cp = outcome.cp_input
    for j, gw in enumerate(network.gateways):
        gw.configure(outcome.solution.gateway_channels(cp, j))

    server, device_macs = commission_network(network)
    report = CommissioningReport()
    for i, dev in enumerate(network.devices):
        mac = device_macs[dev.node_id]
        channel = cp.channels[outcome.solution.node_channels[i]]
        tier = cp.tiers[outcome.solution.node_tiers[i]]
        downlink = server.build_config_downlink(
            mac.dev_addr,
            channels=[channel],
            dr=tier.dr,
            tx_power_dbm=tier.tx_power_dbm,
        )
        answer_bytes = mac.handle_downlink(downlink)
        answer = server.validate_uplink(answer_bytes)
        if answer is None or answer.fport != MAC_PORT:
            report.rejected.append(dev.node_id)
            continue
        answers = decode_commands(answer.payload, uplink=True)
        report.commands_sent += len(answers)
        ok = all(
            a.accepted
            for a in answers
            if isinstance(a, (LinkADRAns, NewChannelAns))
        )
        if ok:
            report.devices_configured += 1
        else:
            report.rejected.append(dev.node_id)
    return report
