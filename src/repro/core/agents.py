"""Gateway-side AlphaWAN agents and the backhaul latency model.

The paper implements application-layer agents on gateways that receive
channel configurations from the server and apply them (rebooting the
gateway radio).  We model the latency terms the paper measures in
Figure 17:

* gateway reboot: 4.62 s on average (measured on RAK hardware);
* configuration distribution over the 2.5 Gbps backhaul: a few
  milliseconds per gateway (serialization + RTT).

All randomness is seeded per agent so runs are reproducible.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..gateway.gateway import Gateway
from ..phy.channels import Channel

__all__ = [
    "REBOOT_MEAN_S",
    "REBOOT_JITTER_S",
    "BACKHAUL_GBPS",
    "PER_GATEWAY_RTT_S",
    "GatewayAgent",
    "distribution_latency_s",
]

REBOOT_MEAN_S = 4.62
REBOOT_JITTER_S = 0.35
BACKHAUL_GBPS = 2.5
PER_GATEWAY_RTT_S = 0.004


@dataclass
class GatewayAgent:
    """Sandboxed configuration agent running on one gateway."""

    gateway: Gateway
    seed: int = 0

    def apply_config(self, channels: Sequence[Channel]) -> float:
        """Apply a channel configuration; returns the reboot latency.

        The agent validates the configuration against the hardware
        (raises ``ValueError`` on violations, leaving the gateway
        untouched), then reboots the radio.
        """
        self.gateway.configure(channels)
        self.gateway.reboot()
        rng = random.Random((self.seed << 16) ^ self.gateway.gateway_id)
        return max(0.5, rng.gauss(REBOOT_MEAN_S, REBOOT_JITTER_S))


def _config_bytes(channels: Sequence[Channel]) -> int:
    """Size of the serialized channel-creation command set."""
    payload = json.dumps(
        [
            {"freq": c.center_hz, "bw": c.bandwidth_hz}
            for c in channels
        ]
    )
    return len(payload.encode("utf-8"))


def distribution_latency_s(
    configs: Sequence[Sequence[Channel]],
    backhaul_gbps: float = BACKHAUL_GBPS,
    rtt_s: float = PER_GATEWAY_RTT_S,
) -> float:
    """Time to push configurations to all gateways over the backhaul.

    Configurations are distributed concurrently; the cost is one RTT
    plus the serialized transfer of the largest config.
    """
    if backhaul_gbps <= 0:
        raise ValueError("backhaul rate must be positive")
    if not configs:
        return 0.0
    largest = max(_config_bytes(c) for c in configs)
    transfer = largest * 8.0 / (backhaul_gbps * 1e9)
    return rtt_s + transfer
