"""Last-known-good assignment cache for degraded-mode operation.

When the Master is unreachable, the upgrade orchestrator and the
network server keep serving from the most recent
:class:`~repro.core.master.Assignment` instead of suspending the
network.  The cache can persist to a JSON file so a restarted operator
process recovers its channel plan without the Master.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..core.master import Assignment

__all__ = ["AssignmentCache"]


class AssignmentCache:
    """Per-operator cache of the last assignment obtained from the Master.

    Args:
        path: Optional JSON file; when given, every store is persisted
            and the constructor loads any existing snapshot.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._assignments: Dict[str, "Assignment"] = {}
        if path is not None and os.path.exists(path):
            self._load(path)

    def store(self, assignment: "Assignment") -> None:
        """Remember an operator's assignment (overwrites, persists)."""
        self._assignments[assignment.operator] = assignment
        if self.path is not None:
            self._save(self.path)

    def get(self, operator: str) -> Optional["Assignment"]:
        """The cached assignment for an operator, if any."""
        return self._assignments.get(operator)

    def forget(self, operator: str) -> bool:
        """Drop an operator's entry; returns whether one existed."""
        existed = self._assignments.pop(operator, None) is not None
        if existed and self.path is not None:
            self._save(self.path)
        return existed

    def __len__(self) -> int:
        return len(self._assignments)

    def __contains__(self, operator: str) -> bool:
        return operator in self._assignments

    # -- persistence -------------------------------------------------------

    def _save(self, path: str) -> None:
        # Imported lazily: the wire codec lives in repro.core, which
        # (indirectly) imports this module — a top-level import cycles.
        from ..core.protocol import assignment_to_wire

        payload = {
            op: assignment_to_wire(a) for op, a in self._assignments.items()
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)

    def _load(self, path: str) -> None:
        from ..core.protocol import assignment_from_wire

        with open(path) as fh:
            payload = json.load(fh)
        for wire in payload.values():
            assignment = assignment_from_wire(wire)
            self._assignments[assignment.operator] = assignment
