"""Failover drill: kill the Master mid-campaign, prove nothing is lost.

The drill is the executable form of the crash-safety contract in
``DESIGN.md`` §11.  It runs a real TCP Master with a write-ahead
journal, registers a fleet of operators, and — per the seeded
:class:`~repro.faults.plan.FaultPlan` — has the Master die *after
applying* one of the registrations but *before replying* (the
:class:`~repro.faults.plan.MasterCrash` fault, i.e. the worst spot a
``kill -9`` can land).  The orphaned client retries with the same
request id while the drill recovers a fresh Master from snapshot +
journal replay on the same address.  The drill then asserts:

* **No lost assignments** — every operator registered before the crash
  holds the same slot and lease on the recovered Master.
* **No duplicate grants** — the retried registration is answered from
  the journal, not re-allocated; every slot is granted exactly once.
* **Identical state** — the recovered Master's status matches the dead
  incarnation's final status (everything but the bumped epoch), and a
  second independent replay of the journal reproduces the same
  snapshot byte-for-byte.
* **Leases survive** — every operator's pre-crash lease still
  validates via ``resume``, now stamped with the new epoch; a forged
  lease is rejected with ``lease_stale``.
* **Bounded recovery** — snapshot load + journal replay + re-listen
  completes within the drill's recovery budget.

Deterministic by construction: recovery happens inside the retrying
client's injected backoff sleep, so there is no wall-clock race between
the crash, the retry, and the new listener.
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from ..core.journal import StateJournal, find_trace_context, trace_context_record
from ..core.master import MasterNode
from ..core.master_client import MasterClient, MasterRequestError
from ..core.master_server import MasterServer
from ..obs import runtime as _obs
from ..obs.causal import TraceContext
from ..phy.channels import ChannelGrid
from .plan import FaultPlan, MasterCrash
from .retry import RetryPolicy

logger = logging.getLogger(__name__)

__all__ = ["DrillReport", "run_drill"]

# Aggressive but bounded: the drill's Master lives on localhost, so
# retries are cheap and the whole drill stays sub-second.
_DRILL_RETRY = RetryPolicy(
    max_attempts=4,
    base_delay_s=0.01,
    multiplier=2.0,
    max_delay_s=0.05,
    jitter_frac=0.5,
    deadline_s=10.0,
)


@dataclass
class DrillReport:
    """Outcome of one failover drill (JSON-safe via :meth:`to_dict`).

    ``recovery_wall_s`` is the only wall-clock field; everything else
    is seed-deterministic, so two drills under the same seed produce
    identical reports apart from it.
    """

    seed: int
    operators: int
    crash_at_request: int
    snapshot_after: int
    journal_ops: int = 0
    snapshot_seq: Optional[int] = None
    epoch_before: int = 0
    epoch_after: int = 0
    recovery_wall_s: float = 0.0
    max_recovery_s: Optional[float] = None
    lost_assignments: int = 0
    duplicate_grants: int = 0
    retry_reanswered: bool = False
    status_identical: bool = False
    replay_identical: bool = False
    resumes_ok: int = 0
    stale_lease_rejected: bool = False
    read_only_after: bool = False
    client_retries: int = 0
    client_reconnects: int = 0
    trace_id: Optional[str] = None
    trace_resumed: bool = False
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every crash-safety invariant held."""
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        out = asdict(self)
        out["passed"] = self.passed
        return out


def _check(report: DrillReport, ok: bool, label: str) -> None:
    if not ok:
        report.failures.append(label)


@dataclass
class _Incarnation:
    """State handed from the recovery hook back to the drill body."""

    master2: Optional[MasterNode] = None
    server2: Optional[MasterServer] = None
    status_at_crash: Dict[str, object] = field(default_factory=dict)
    status_after_recovery: Dict[str, object] = field(default_factory=dict)


def run_drill(
    grid: ChannelGrid,
    out_dir: str,
    seed: int = 0,
    operators: int = 6,
    crash_at_request: int = 4,
    snapshot_after: int = 2,
    max_recovery_s: Optional[float] = None,
) -> DrillReport:
    """Run one crash-restart failover drill; returns its report.

    Args:
        grid: Regional channel grid the Master divides.
        out_dir: Scratch directory for the journal and snapshot (both
            are recreated; existing drill files are overwritten).
        seed: Fault-plan seed (also seeds the client's retry jitter and
            request-id streams).
        operators: Fleet size; one ``register`` request each.
        crash_at_request: Which request the Master dies on (1-based;
            applied + journaled, reply withheld).
        snapshot_after: Take the snapshot after this many registers, so
            recovery exercises snapshot *plus* journal-tail replay.
        max_recovery_s: Optional wall-clock budget for the recovery;
            exceeding it is a drill failure.
    """
    if not 1 <= crash_at_request <= operators:
        raise ValueError("crash point must fall within the register campaign")
    if not 0 <= snapshot_after < crash_at_request:
        raise ValueError("snapshot must precede the crash point")
    os.makedirs(out_dir, exist_ok=True)
    journal_path = os.path.join(out_dir, "master-journal.jsonl")
    snapshot_path = os.path.join(out_dir, "master-snapshot.json")
    for path in (journal_path, snapshot_path):
        if os.path.exists(path):
            os.remove(path)

    report = DrillReport(
        seed=seed,
        operators=operators,
        crash_at_request=crash_at_request,
        snapshot_after=snapshot_after,
        max_recovery_s=max_recovery_s,
    )
    names = [f"op-{i:02d}" for i in range(operators)]
    plan = FaultPlan(
        seed=seed, master_crashes=(MasterCrash(at_request=crash_at_request),)
    )

    journal = StateJournal(journal_path)
    master1 = MasterNode(grid, expected_networks=operators, journal=journal)
    server1 = MasterServer(master1, fault_plan=plan).start()
    address = server1.address
    report.epoch_before = master1.epoch

    # Causal tracing across the kill/restart boundary: mint the drill's
    # root context and persist it to the journal (after MasterNode
    # construction, so the header record stays first).  The recovered
    # incarnation reads it back and resumes the *same* trace_id under a
    # new epoch span — one causal trace spanning both incarnations.
    drill_ctx = TraceContext.root(f"drill:{seed}", seed=seed)
    report.trace_id = drill_ctx.trace_id
    journal.append(trace_context_record(drill_ctx.to_wire()))
    rec = _obs.TRACE
    if rec is not None:
        rec.set_context(drill_ctx.child(f"epoch-{master1.epoch}"))

    # Recovery state, filled in by the client's backoff hook: the crash
    # severs the retrying client's connection, and the *backoff sleep*
    # before its retry is where the drill performs the restart — the
    # retry then lands on the recovered Master, race-free.
    incarnation = _Incarnation()

    def recover_during_backoff(_delay_s: float) -> None:
        if incarnation.master2 is not None:
            return
        incarnation.status_at_crash = master1.status()
        t0 = time.perf_counter()  # repro: noqa[DET002]
        master2 = MasterNode.recover(journal_path, snapshot_path)
        server2 = MasterServer(
            master2, host=address[0], port=address[1]
        ).start()
        report.recovery_wall_s = time.perf_counter() - t0  # repro: noqa[DET002]
        incarnation.master2 = master2
        incarnation.server2 = server2
        # Captured *before* the retry lands: the recovered incarnation
        # must already hold the dead one's exact state.
        incarnation.status_after_recovery = master2.status()
        # Resume the causal trace from the journal: same trace_id, a
        # fresh span for the new incarnation epoch.
        resumed_wire = find_trace_context(StateJournal.replay(journal_path))
        resumed = TraceContext.from_wire(resumed_wire)
        if resumed is not None:
            report.trace_resumed = resumed.trace_id == drill_ctx.trace_id
            rec2 = _obs.TRACE
            if rec2 is not None:
                rec2.set_context(resumed.child(f"epoch-{master2.epoch}"))
        logger.info(
            "drill: master recovered on %s in %.4f s (epoch %d)",
            address,
            report.recovery_wall_s,
            master2.epoch,
        )

    client = MasterClient(
        address,
        timeout_s=5.0,
        retry=_DRILL_RETRY,
        retry_seed=seed,
        sleep=recover_during_backoff,
    )
    try:
        assignments = {}
        for i, operator in enumerate(names):
            assignments[operator] = client.register(operator)
            if i + 1 == snapshot_after:
                master1.snapshot_to(snapshot_path)

        master2 = incarnation.master2
        _check(report, master2 is not None, "master never crashed/recovered")
        if master2 is None:
            return report
        report.epoch_after = master2.epoch
        report.client_retries = client.retries
        report.client_reconnects = client.reconnects

        # Identical state: the recovered incarnation answers with the
        # dead one's exact final status, epoch aside.
        status_at_crash = dict(incarnation.status_at_crash)
        status_after_recovery = dict(incarnation.status_after_recovery)
        status_at_crash.pop("epoch", None)
        status_after_recovery.pop("epoch", None)
        _check(
            report,
            status_at_crash == status_after_recovery,
            "recovered status differs from pre-crash status",
        )
        report.status_identical = status_at_crash == status_after_recovery

        # No duplicate grants, no lost assignments.
        slots = [a.slot for a in assignments.values()]
        report.duplicate_grants = len(slots) - len(set(slots))
        _check(report, report.duplicate_grants == 0, "duplicate slot grants")
        lost = 0
        for operator, granted in assignments.items():
            held = master2.assignment_of(operator)
            if (
                held is None
                or held.slot != granted.slot
                or held.lease != granted.lease
            ):
                lost += 1
        report.lost_assignments = lost
        _check(report, lost == 0, "assignments lost or rewritten by recovery")

        # The crashed-on request was re-answered from the journal: the
        # client retried it (same request id) and got the slot the dead
        # incarnation had already journaled.
        crashed_op = names[crash_at_request - 1]
        journaled = master2.assignment_of(crashed_op)
        report.retry_reanswered = (
            report.client_retries >= 1
            and journaled is not None
            and journaled.slot == assignments[crashed_op].slot
        )
        _check(
            report,
            report.retry_reanswered,
            "retried register was not answered from the journal",
        )

        # Leases survive recovery; forged leases do not.
        for operator, granted in sorted(assignments.items()):
            resumed = client.resume(operator, granted.lease)
            if resumed.epoch == master2.epoch and resumed.slot == granted.slot:
                report.resumes_ok += 1
        _check(
            report,
            report.resumes_ok == operators,
            "lease resume failed after recovery",
        )
        try:
            client.resume(names[0], "forged-lease")
        except MasterRequestError as exc:
            report.stale_lease_rejected = exc.code == "lease_stale"
        _check(
            report,
            report.stale_lease_rejected,
            "forged lease was not rejected as stale",
        )

        report.read_only_after = master2.read_only
        _check(report, not master2.read_only, "master read-only after drill")

        if max_recovery_s is not None:
            _check(
                report,
                report.recovery_wall_s <= max_recovery_s,
                f"recovery took {report.recovery_wall_s:.4f} s "
                f"(budget {max_recovery_s:.4f} s)",
            )

        # Replay determinism: an independent recovery from the same
        # journal + snapshot reproduces the state byte-for-byte.
        records = StateJournal.replay(journal_path)
        report.journal_ops = sum(1 for r in records if r.get("kind") == "op")
        snap = master2.snapshot()
        replayed = MasterNode.recover(journal_path, snapshot_path)
        try:
            resnap = replayed.snapshot()
            report.snapshot_seq = int(snap["seq"])
            for s in (snap, resnap):
                s.pop("epoch", None)
            report.replay_identical = json.dumps(
                snap, sort_keys=True
            ) == json.dumps(resnap, sort_keys=True)
        finally:
            if replayed.journal is not None:
                replayed.journal.close()
        _check(
            report,
            report.replay_identical,
            "independent journal replay diverged",
        )
        return report
    finally:
        client.close()
        if incarnation.server2 is not None:
            incarnation.server2.close()
        server1.close()
        if (
            incarnation.master2 is not None
            and incarnation.master2.journal is not None
        ):
            incarnation.master2.journal.close()
        journal.close()
