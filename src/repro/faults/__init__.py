"""Fault injection and resilience: reproducible chaos for every layer.

The package has three pieces:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan` (gateway
  crashes, backhaul drop/delay, Master outages, decoder degradation)
  with seeded sub-RNG streams, consumed by both the online simulation
  engine and the TCP Master server.
* :mod:`repro.faults.retry` — :class:`RetryPolicy` (client backoff +
  jitter + deadline) and :class:`RetransmitPolicy` (device-side
  confirmed-uplink backoff), plus :class:`MasterUnavailableError`.
* :mod:`repro.faults.cache` — :class:`AssignmentCache`, the last-known
  channel assignment served in degraded mode when the Master is down.
"""

from __future__ import annotations

from .cache import AssignmentCache
from .plan import (
    BackhaulFault,
    DecoderDegradation,
    FaultPlan,
    GatewayCrash,
    MasterOutage,
    union_length_s,
)
from .retry import MasterUnavailableError, RetransmitPolicy, RetryPolicy

__all__ = [
    "AssignmentCache",
    "BackhaulFault",
    "DecoderDegradation",
    "FaultPlan",
    "GatewayCrash",
    "MasterOutage",
    "union_length_s",
    "MasterUnavailableError",
    "RetransmitPolicy",
    "RetryPolicy",
]
