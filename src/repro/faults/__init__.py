"""Fault injection and resilience: reproducible chaos for every layer.

The package has three pieces:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan` (gateway
  crashes, backhaul drop/delay, Master outages, decoder degradation)
  with seeded sub-RNG streams, consumed by both the online simulation
  engine and the TCP Master server.
* :mod:`repro.faults.retry` — :class:`RetryPolicy` (client backoff +
  jitter + deadline) and :class:`RetransmitPolicy` (device-side
  confirmed-uplink backoff), plus :class:`MasterUnavailableError`.
* :mod:`repro.faults.cache` — :class:`AssignmentCache`, the last-known
  channel assignment served in degraded mode when the Master is down.
* :mod:`repro.faults.drill` — :func:`run_drill`, the failover drill
  that kills and restarts the Master mid-campaign and asserts its
  crash-safety invariants (no lost or duplicated assignments, bounded
  recovery time).
"""

from __future__ import annotations

from .cache import AssignmentCache
from .drill import DrillReport, run_drill
from .plan import (
    BackhaulFault,
    DecoderDegradation,
    FaultPlan,
    GatewayCrash,
    MasterCrash,
    MasterOutage,
    union_length_s,
)
from .retry import MasterUnavailableError, RetransmitPolicy, RetryPolicy

__all__ = [
    "AssignmentCache",
    "BackhaulFault",
    "DecoderDegradation",
    "DrillReport",
    "FaultPlan",
    "GatewayCrash",
    "MasterCrash",
    "MasterOutage",
    "union_length_s",
    "MasterUnavailableError",
    "RetransmitPolicy",
    "RetryPolicy",
    "run_drill",
]
