"""Declarative fault plans for reproducible chaos runs.

A :class:`FaultPlan` is the single source of truth for every injected
failure in a run: gateway crash/reboot schedules, backhaul packet
drop/delay distributions, Master outage windows, and decoder-pool
degradations.  The same plan object is consumed by the online
simulation engine (:meth:`repro.sim.engine.OnlineSimulator.run_online`)
and by the TCP :class:`~repro.core.master_server.MasterServer`, so one
declaration drives component failures across every layer.

All randomness derives from the plan's ``seed`` through named
sub-streams (:meth:`FaultPlan.rng`), keyed by a stable hash — two runs
of the same plan produce byte-identical fault sequences regardless of
process hash randomization.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import random

__all__ = [
    "GatewayCrash",
    "BackhaulFault",
    "MasterOutage",
    "MasterCrash",
    "DecoderDegradation",
    "FaultPlan",
    "union_length_s",
]


@dataclass(frozen=True)
class GatewayCrash:
    """A gateway crashes at ``time_s`` and stays dark for ``down_s``.

    Unlike a :class:`~repro.sim.engine.Reconfiguration` the channel
    configuration is unchanged — the radio simply reboots, aborting
    in-flight receptions and losing every packet that locks on during
    the downtime.
    """

    time_s: float
    gateway_id: int
    down_s: float

    def __post_init__(self) -> None:
        if self.down_s <= 0:
            raise ValueError("crash downtime must be positive")

    @property
    def up_s(self) -> float:
        """The instant the gateway is back online."""
        return self.time_s + self.down_s


@dataclass(frozen=True)
class BackhaulFault:
    """Lossy/slow backhaul between a gateway and its network server.

    While active, each successfully decoded packet is independently
    dropped with ``drop_prob`` before reaching the network server, and
    surviving packets are delayed by ``delay_mean_s`` plus uniform
    jitter up to ``delay_jitter_s``.

    Attributes:
        gateway_id: Affected gateway, or ``None`` for every gateway.
        start_s / end_s: Active window (defaults to the whole run).
    """

    gateway_id: Optional[int] = None
    start_s: float = 0.0
    end_s: float = math.inf
    drop_prob: float = 0.0
    delay_mean_s: float = 0.0
    delay_jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ValueError("drop probability must be in [0, 1]")
        if self.delay_mean_s < 0 or self.delay_jitter_s < 0:
            raise ValueError("backhaul delays must be non-negative")
        if self.end_s <= self.start_s:
            raise ValueError("fault window must have positive length")

    def active_at(self, t: float) -> bool:
        """Whether the fault applies at instant ``t``."""
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class MasterOutage:
    """The Master node is unreachable during ``[start_s, end_s)``."""

    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("outage duration must be positive")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active_at(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class MasterCrash:
    """The Master process dies right after applying its Nth request.

    Unlike a :class:`MasterOutage` (a time window during which requests
    vanish), a crash is request-counted and *asymmetric*: request
    number ``at_request`` is journaled and committed, but the process
    dies before the reply leaves the socket.  That is the window where
    a client retry would double-allocate spectrum if the restarted
    Master did not answer replays from its journal — precisely what the
    failover drill (``repro.tools drill``) asserts cannot happen.

    Attributes:
        at_request: 1-based count of requests read off the wire; the
            crash fires after this request is applied.
    """

    at_request: int

    def __post_init__(self) -> None:
        if self.at_request < 1:
            raise ValueError("crash point must be a positive request count")


@dataclass(frozen=True)
class DecoderDegradation:
    """A gateway's decoder pool shrinks to ``decoders`` at ``time_s``.

    Models partial hardware/firmware failure: decoders already busy
    drain naturally, but only ``decoders`` concurrent receptions are
    admitted afterwards.  With ``duration_s`` set, the pool is restored
    to its hardware capacity when the window ends.
    """

    time_s: float
    gateway_id: int
    decoders: int
    duration_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.decoders < 1:
            raise ValueError("a degraded pool still needs >= 1 decoder")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("degradation duration must be positive")


def _stable_stream_seed(seed: int, label: str) -> int:
    """A process-independent integer seed for a named sub-stream."""
    digest = hashlib.blake2b(
        f"{seed}:{label}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def union_length_s(
    intervals: Sequence[Tuple[float, float]],
    window_s: Optional[float] = None,
) -> float:
    """Total length covered by a set of (start, end) intervals.

    Intervals are clipped to ``[0, window_s]`` when a window is given;
    overlaps are counted once.
    """
    clipped: List[Tuple[float, float]] = []
    for start, end in intervals:
        lo = max(0.0, start)
        hi = end if window_s is None else min(end, window_s)
        if hi > lo:
            clipped.append((lo, hi))
    clipped.sort()
    total = 0.0
    cur_lo = cur_hi = None
    for lo, hi in clipped:
        if cur_hi is None or lo > cur_hi:
            if cur_hi is not None:
                total += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        else:
            cur_hi = max(cur_hi, hi)
    if cur_hi is not None:
        total += cur_hi - cur_lo
    return total


@dataclass(frozen=True)
class FaultPlan:
    """Every fault injected into one run, under one seed.

    Attributes:
        seed: Root seed for all fault randomness (backhaul drops,
            delays, retransmission jitter).
        gateway_crashes: Gateway crash/reboot schedule.
        backhaul_faults: Backhaul drop/delay windows.
        master_outages: Windows during which the Master is unreachable.
        master_crashes: Request-counted Master crash-restart points.
        decoder_degradations: Decoder-pool shrink events.
    """

    seed: int = 0
    gateway_crashes: Tuple[GatewayCrash, ...] = ()
    backhaul_faults: Tuple[BackhaulFault, ...] = ()
    master_outages: Tuple[MasterOutage, ...] = ()
    master_crashes: Tuple[MasterCrash, ...] = ()
    decoder_degradations: Tuple[DecoderDegradation, ...] = ()

    # -- queries -----------------------------------------------------------

    def rng(self, label: str) -> random.Random:
        """A deterministic RNG sub-stream named ``label``.

        The same (seed, label) pair always yields the same stream, in
        any process — the backbone of reproducible chaos.
        """
        return random.Random(_stable_stream_seed(self.seed, label))

    def crashes_for(self, gateway_id: int) -> List[GatewayCrash]:
        """Crash events of one gateway, in time order."""
        return sorted(
            (c for c in self.gateway_crashes if c.gateway_id == gateway_id),
            key=lambda c: c.time_s,
        )

    def degradations_for(self, gateway_id: int) -> List[DecoderDegradation]:
        """Decoder degradations of one gateway, in time order."""
        return sorted(
            (
                d
                for d in self.decoder_degradations
                if d.gateway_id == gateway_id
            ),
            key=lambda d: d.time_s,
        )

    def backhaul_for(self, gateway_id: int) -> List[BackhaulFault]:
        """Backhaul faults applying to one gateway (incl. wildcards)."""
        return [
            f
            for f in self.backhaul_faults
            if f.gateway_id is None or f.gateway_id == gateway_id
        ]

    def backhaul_at(self, gateway_id: int, t: float) -> Optional[BackhaulFault]:
        """The first active backhaul fault for a gateway at instant ``t``."""
        for fault in self.backhaul_for(gateway_id):
            if fault.active_at(t):
                return fault
        return None

    def master_down_at(self, t: float) -> bool:
        """Whether the Master is inside an outage window at ``t``."""
        return any(o.active_at(t) for o in self.master_outages)

    def degraded_intervals(self) -> List[Tuple[float, float]]:
        """(start, end) windows during which any component is degraded."""
        out: List[Tuple[float, float]] = []
        out.extend((o.start_s, o.end_s) for o in self.master_outages)
        out.extend((c.time_s, c.up_s) for c in self.gateway_crashes)
        for d in self.decoder_degradations:
            end = math.inf if d.duration_s is None else d.time_s + d.duration_s
            out.append((d.time_s, end))
        return out

    def degraded_time_s(self, window_s: Optional[float] = None) -> float:
        """Total time any component is degraded (overlaps counted once)."""
        return union_length_s(self.degraded_intervals(), window_s)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict:
        """Plain-dict form (JSON-safe apart from ``inf`` end times)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        """Rebuild a plan serialized by :meth:`to_dict`."""
        return cls(
            seed=int(data.get("seed", 0)),
            gateway_crashes=tuple(
                GatewayCrash(**c) for c in data.get("gateway_crashes", ())
            ),
            backhaul_faults=tuple(
                BackhaulFault(**b) for b in data.get("backhaul_faults", ())
            ),
            master_outages=tuple(
                MasterOutage(**o) for o in data.get("master_outages", ())
            ),
            master_crashes=tuple(
                MasterCrash(**c) for c in data.get("master_crashes", ())
            ),
            decoder_degradations=tuple(
                DecoderDegradation(**d)
                for d in data.get("decoder_degradations", ())
            ),
        )
