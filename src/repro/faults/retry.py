"""Retry/backoff policies for the resilience layer.

Two consumers:

* the operator-side :class:`~repro.core.master_client.MasterClient`
  retries Master round-trips with exponential backoff + jitter under a
  bounded deadline (:class:`RetryPolicy`);
* end devices retransmit unacknowledged confirmed uplinks with a
  LoRaWAN-style growing random backoff (:class:`RetransmitPolicy`).

Both policies are pure: given an attempt number and an RNG they return
a delay, so tests can verify determinism under a fixed seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["MasterUnavailableError", "RetryPolicy", "RetransmitPolicy"]


class MasterUnavailableError(Exception):
    """The Master could not be reached within the retry budget.

    Carries the last underlying transport error as ``__cause__``;
    callers holding a cached :class:`~repro.core.master.Assignment`
    should fall back to it and enter degraded mode.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter and a bounded overall deadline.

    Attributes:
        max_attempts: Total round-trip attempts (first try included).
        base_delay_s: Backoff before the first retry.
        multiplier: Exponential growth factor per retry.
        max_delay_s: Ceiling on a single backoff.
        jitter_frac: Fraction of each backoff randomized uniformly (0 = pure
            exponential, 1 = "full jitter").
        deadline_s: Hard bound on the whole operation, sleeps included;
            once exceeded no further attempt is made.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter_frac: float = 0.5
    deadline_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.deadline_s <= 0:
            raise ValueError("deadline must be positive")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        Deterministic given the RNG state: the fixed (1 - jitter) share
        of the exponential delay plus a uniformly random jitter share.
        """
        if attempt < 1:
            raise ValueError("attempt numbering starts at 1")
        raw = min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1)
        )
        return raw * (1.0 - self.jitter_frac) + rng.uniform(0.0, raw * self.jitter_frac)


@dataclass(frozen=True)
class RetransmitPolicy:
    """LoRaWAN-style confirmed-uplink retransmission backoff.

    After a missed acknowledgement a device waits an ACK timeout plus a
    random backoff that doubles per attempt (mirroring the spec's
    RETRANSMIT_TIMEOUT randomization), then re-sends the same frame
    counter.

    Attributes:
        max_retries: Retransmissions allowed after the first try.
        ack_timeout_s: Base wait for the (modelled) acknowledgement.
        base_backoff_s: Initial random-backoff window width.
        multiplier: Backoff-window growth factor per attempt.
    """

    max_retries: int = 2
    ack_timeout_s: float = 1.0
    base_backoff_s: float = 2.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.ack_timeout_s < 0 or self.base_backoff_s < 0:
            raise ValueError("timeouts must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """Wait between the end of attempt ``attempt`` (1-based) and the next."""
        if attempt < 1:
            raise ValueError("attempt numbering starts at 1")
        window = self.base_backoff_s * self.multiplier ** (attempt - 1)
        return self.ack_timeout_s + rng.uniform(0.0, window)
