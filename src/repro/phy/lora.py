"""LoRa physical-layer parameters: spreading factors, data rates, airtime.

This module models the LoRa modulation exactly as consumed by the rest of
the reproduction: symbol timing, time-on-air (Semtech AN1200.13 formula),
preamble duration (which determines the *lock-on* instant of a gateway
decoder, see :mod:`repro.gateway.detector`), and the demodulation SNR
thresholds calibrated to the paper's Figure 16 measurement (approximately
-13 dB for DR4 on an SX1302 front-end).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import IntEnum
from typing import Any

__all__ = [
    "SpreadingFactor",
    "DataRate",
    "CodingRate",
    "LoRaParams",
    "DR_TO_SF",
    "SF_TO_DR",
    "SNR_THRESHOLD_DB",
    "symbol_time_s",
    "preamble_duration_s",
    "time_on_air_s",
    "snr_threshold_db",
    "bitrate_bps",
]


class SpreadingFactor(IntEnum):
    """LoRa spreading factor: each symbol carries ``SF`` bits over 2^SF chips."""

    SF7 = 7
    SF8 = 8
    SF9 = 9
    SF10 = 10
    SF11 = 11
    SF12 = 12


class DataRate(IntEnum):
    """LoRaWAN data-rate index (125 kHz uplink ladder, DR0 slowest).

    The paper's testbed (AS923-style band, 923-925 MHz and 916.8-921.6 MHz)
    uses the DR0..DR5 ladder where DR5 maps to SF7 and DR0 to SF12.
    """

    DR0 = 0
    DR1 = 1
    DR2 = 2
    DR3 = 3
    DR4 = 4
    DR5 = 5


class CodingRate(IntEnum):
    """Forward-error-correction rate expressed as 4/(4+value)."""

    CR_4_5 = 1
    CR_4_6 = 2
    CR_4_7 = 3
    CR_4_8 = 4


DR_TO_SF = {
    DataRate.DR0: SpreadingFactor.SF12,
    DataRate.DR1: SpreadingFactor.SF11,
    DataRate.DR2: SpreadingFactor.SF10,
    DataRate.DR3: SpreadingFactor.SF9,
    DataRate.DR4: SpreadingFactor.SF8,
    DataRate.DR5: SpreadingFactor.SF7,
}

SF_TO_DR = {sf: dr for dr, sf in DR_TO_SF.items()}

# Demodulation SNR thresholds (dB), one per spreading factor.  The standard
# Semtech ladder is -7.5 dB at SF7 stepping -2.5 dB per SF; the paper's
# Figure 16 measures the practical SX1302 threshold at roughly -13 dB for
# DR4 (SF8), i.e. ~3 dB better than the datasheet ladder.  We calibrate to
# the measured value so the Fig. 16 reproduction lands on the paper's curve.
SNR_THRESHOLD_DB = {
    SpreadingFactor.SF7: -10.5,
    SpreadingFactor.SF8: -13.0,
    SpreadingFactor.SF9: -15.5,
    SpreadingFactor.SF10: -18.0,
    SpreadingFactor.SF11: -20.5,
    SpreadingFactor.SF12: -23.0,
}

DEFAULT_PREAMBLE_SYMBOLS = 8
DEFAULT_BANDWIDTH_HZ = 125_000


@dataclass(frozen=True)
class LoRaParams:
    """A complete LoRa transmission parameter set.

    Attributes:
        sf: Spreading factor.
        bandwidth_hz: Channel bandwidth in Hz (125/250/500 kHz).
        coding_rate: FEC coding rate.
        preamble_symbols: Number of programmed preamble symbols.
        explicit_header: Whether the PHY header is present.
        crc: Whether the payload CRC is enabled (uplinks: yes).
    """

    sf: SpreadingFactor
    bandwidth_hz: int = DEFAULT_BANDWIDTH_HZ
    coding_rate: CodingRate = CodingRate.CR_4_5
    preamble_symbols: int = DEFAULT_PREAMBLE_SYMBOLS
    explicit_header: bool = True
    crc: bool = True

    @classmethod
    def from_dr(cls, dr: DataRate, **kwargs: Any) -> "LoRaParams":
        """Build parameters for a LoRaWAN data-rate index."""
        return cls(sf=DR_TO_SF[DataRate(dr)], **kwargs)

    @property
    def dr(self) -> DataRate:
        """The LoRaWAN data-rate index of this parameter set."""
        return SF_TO_DR[self.sf]

    def symbol_time_s(self) -> float:
        """Duration of one LoRa symbol in seconds."""
        return symbol_time_s(self.sf, self.bandwidth_hz)

    def preamble_duration_s(self) -> float:
        """Duration of the preamble (incl. sync) in seconds."""
        return preamble_duration_s(
            self.sf, self.bandwidth_hz, self.preamble_symbols
        )

    def time_on_air_s(self, payload_bytes: int) -> float:
        """Total packet airtime for ``payload_bytes`` of MAC payload."""
        return time_on_air_s(
            payload_bytes,
            self.sf,
            self.bandwidth_hz,
            coding_rate=self.coding_rate,
            preamble_symbols=self.preamble_symbols,
            explicit_header=self.explicit_header,
            crc=self.crc,
        )

    def snr_threshold_db(self) -> float:
        """Minimum SNR at which this parameter set demodulates."""
        return SNR_THRESHOLD_DB[self.sf]


def symbol_time_s(sf: SpreadingFactor, bandwidth_hz: int = DEFAULT_BANDWIDTH_HZ) -> float:
    """Return the LoRa symbol duration ``2^SF / BW`` in seconds."""
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    return float(2 ** int(sf)) / float(bandwidth_hz)


def preamble_duration_s(
    sf: SpreadingFactor,
    bandwidth_hz: int = DEFAULT_BANDWIDTH_HZ,
    preamble_symbols: int = DEFAULT_PREAMBLE_SYMBOLS,
) -> float:
    """Duration of the preamble including the 4.25-symbol sync sequence.

    A gateway channel *locks on* to a packet only once the full preamble
    has been observed; the lock-on instant drives the FCFS decoder
    dispatch order (paper section 3.1).
    """
    if preamble_symbols < 1:
        raise ValueError("preamble must contain at least one symbol")
    t_sym = symbol_time_s(sf, bandwidth_hz)
    return (preamble_symbols + 4.25) * t_sym


def _low_data_rate_optimize(sf: SpreadingFactor, bandwidth_hz: int) -> bool:
    """LDRO is mandated when the symbol time exceeds 16 ms."""
    return symbol_time_s(sf, bandwidth_hz) > 0.016


def time_on_air_s(
    payload_bytes: int,
    sf: SpreadingFactor,
    bandwidth_hz: int = DEFAULT_BANDWIDTH_HZ,
    coding_rate: CodingRate = CodingRate.CR_4_5,
    preamble_symbols: int = DEFAULT_PREAMBLE_SYMBOLS,
    explicit_header: bool = True,
    crc: bool = True,
) -> float:
    """Compute the LoRa time-on-air (Semtech AN1200.13).

    Args:
        payload_bytes: MAC payload length in bytes (PHYPayload).
        sf: Spreading factor.
        bandwidth_hz: Bandwidth in Hz.
        coding_rate: FEC rate.
        preamble_symbols: Programmed preamble length.
        explicit_header: Explicit PHY header flag.
        crc: CRC-enabled flag.

    Returns:
        Packet duration in seconds (preamble + header + payload).
    """
    if payload_bytes < 0:
        raise ValueError(f"payload length must be >= 0, got {payload_bytes}")
    t_sym = symbol_time_s(sf, bandwidth_hz)
    t_preamble = (preamble_symbols + 4.25) * t_sym

    de = 2 if _low_data_rate_optimize(sf, bandwidth_hz) else 0
    ih = 0 if explicit_header else 1
    crc_bits = 16 if crc else 0

    numerator = 8 * payload_bytes - 4 * int(sf) + 28 + crc_bits - 20 * ih
    denominator = 4 * (int(sf) - de)
    payload_symbols = 8 + max(
        math.ceil(numerator / denominator) * (int(coding_rate) + 4), 0
    )
    return t_preamble + payload_symbols * t_sym


def snr_threshold_db(sf: SpreadingFactor) -> float:
    """Minimum demodulation SNR for a spreading factor (dB)."""
    return SNR_THRESHOLD_DB[SpreadingFactor(sf)]


def bitrate_bps(
    sf: SpreadingFactor,
    bandwidth_hz: int = DEFAULT_BANDWIDTH_HZ,
    coding_rate: CodingRate = CodingRate.CR_4_5,
) -> float:
    """Raw LoRa bit rate ``SF * BW / 2^SF * CR`` in bits per second."""
    cr = 4.0 / (4.0 + int(coding_rate))
    return int(sf) * float(bandwidth_hz) / (2 ** int(sf)) * cr
