"""Frequency channels, channel grids, and LoRaWAN channel plans.

A *channel* is a (center frequency, bandwidth) pair.  A *grid* is the set
of standard channel positions inside a spectrum block (200 kHz raster for
125 kHz uplink channels, as in US915/AS923).  A *channel plan* is the
subset of (usually eight) channels a gateway or a network operates on —
the object that AlphaWAN's planners optimize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = [
    "Channel",
    "ChannelGrid",
    "ChannelPlan",
    "overlap_ratio",
    "overlap_hz",
    "standard_plans",
    "GRID_SPACING_HZ",
    "CHANNEL_BANDWIDTH_HZ",
    "PLAN_SIZE",
]

GRID_SPACING_HZ = 200_000
CHANNEL_BANDWIDTH_HZ = 125_000
PLAN_SIZE = 8  # channels per standard LoRaWAN plan (Figure 19)


@dataclass(frozen=True, order=True)
class Channel:
    """A radio channel described by its center frequency and bandwidth."""

    center_hz: float
    bandwidth_hz: float = CHANNEL_BANDWIDTH_HZ

    def __post_init__(self) -> None:
        if self.center_hz <= 0:
            raise ValueError(f"center frequency must be positive: {self.center_hz}")
        if self.bandwidth_hz <= 0:
            raise ValueError(f"bandwidth must be positive: {self.bandwidth_hz}")

    @property
    def low_hz(self) -> float:
        """Lower passband edge."""
        return self.center_hz - self.bandwidth_hz / 2.0

    @property
    def high_hz(self) -> float:
        """Upper passband edge."""
        return self.center_hz + self.bandwidth_hz / 2.0

    def offset_hz(self, other: "Channel") -> float:
        """Absolute center-frequency offset to another channel."""
        return abs(self.center_hz - other.center_hz)

    def shifted(self, delta_hz: float) -> "Channel":
        """Return a copy of this channel shifted by ``delta_hz``."""
        return Channel(self.center_hz + delta_hz, self.bandwidth_hz)


def overlap_hz(a: Channel, b: Channel) -> float:
    """Width of the spectral intersection of two channels in Hz."""
    return max(0.0, min(a.high_hz, b.high_hz) - max(a.low_hz, b.low_hz))


def overlap_ratio(a: Channel, b: Channel) -> float:
    """Fraction of the narrower channel's bandwidth covered by the other.

    1.0 means perfectly aligned (for equal bandwidths), 0.0 means fully
    disjoint.  The paper expresses inter-network *frequency misalignment*
    as ``1 - overlap_ratio``.
    """
    return overlap_hz(a, b) / min(a.bandwidth_hz, b.bandwidth_hz)


@dataclass(frozen=True)
class ChannelGrid:
    """The raster of standard channel positions within a spectrum block.

    Mirrors the paper's Figure 19: channels are numbered CH0 upward from
    the lowest frequency on a fixed spacing, and each consecutive group of
    :data:`PLAN_SIZE` channels forms one standard channel plan.
    """

    start_hz: float
    width_hz: float
    spacing_hz: float = GRID_SPACING_HZ
    bandwidth_hz: float = CHANNEL_BANDWIDTH_HZ

    def __post_init__(self) -> None:
        if self.width_hz < self.spacing_hz:
            raise ValueError(
                f"grid width {self.width_hz} Hz cannot hold a single "
                f"{self.spacing_hz} Hz slot"
            )

    @property
    def num_channels(self) -> int:
        """Total channels the block can hold."""
        return int(self.width_hz // self.spacing_hz)

    def channel(self, index: int) -> Channel:
        """The channel at grid ``index`` (0-based from the lowest frequency)."""
        if not 0 <= index < self.num_channels:
            raise IndexError(
                f"channel index {index} out of range 0..{self.num_channels - 1}"
            )
        center = self.start_hz + self.spacing_hz / 2.0 + index * self.spacing_hz
        return Channel(center, self.bandwidth_hz)

    def channels(self) -> List[Channel]:
        """All channels in the grid, lowest frequency first."""
        return [self.channel(i) for i in range(self.num_channels)]

    def index_of(self, channel: Channel, tolerance_hz: float = 1.0) -> int:
        """Grid index of an (aligned) channel; raises if off-grid."""
        rel = channel.center_hz - self.start_hz - self.spacing_hz / 2.0
        index = round(rel / self.spacing_hz)
        if 0 <= index < self.num_channels:
            expected = self.channel(index)
            if abs(expected.center_hz - channel.center_hz) <= tolerance_hz:
                return index
        raise ValueError(f"channel {channel} is not on grid {self}")

    def subgrid(self, num_channels: int, start_index: int = 0) -> "ChannelGrid":
        """A contiguous sub-block starting at ``start_index``."""
        if start_index + num_channels > self.num_channels:
            raise ValueError("subgrid exceeds parent grid")
        return ChannelGrid(
            start_hz=self.start_hz + start_index * self.spacing_hz,
            width_hz=num_channels * self.spacing_hz,
            spacing_hz=self.spacing_hz,
            bandwidth_hz=self.bandwidth_hz,
        )

    def shifted(self, delta_hz: float) -> "ChannelGrid":
        """The whole grid translated in frequency by ``delta_hz``."""
        return ChannelGrid(
            start_hz=self.start_hz + delta_hz,
            width_hz=self.width_hz,
            spacing_hz=self.spacing_hz,
            bandwidth_hz=self.bandwidth_hz,
        )


@dataclass(frozen=True)
class ChannelPlan:
    """An ordered set of channels a gateway or a network operates on."""

    name: str
    channels: Tuple[Channel, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "channels", tuple(sorted(self.channels))
        )

    def __len__(self) -> int:
        return len(self.channels)

    def __iter__(self) -> Iterator[Channel]:
        return iter(self.channels)

    def __contains__(self, channel: Channel) -> bool:
        return channel in self.channels

    @property
    def span_hz(self) -> float:
        """Frequency span from the lowest to the highest channel edge."""
        if not self.channels:
            return 0.0
        return self.channels[-1].high_hz - self.channels[0].low_hz

    def best_match(self, channel: Channel) -> Tuple[Channel, float]:
        """The plan channel with the highest overlap to ``channel``.

        Returns:
            ``(plan_channel, overlap)`` where overlap is the
            :func:`overlap_ratio`; ``overlap == 0`` if disjoint everywhere.
        """
        if not self.channels:
            raise ValueError(f"channel plan {self.name!r} is empty")
        best = max(self.channels, key=lambda c: overlap_ratio(c, channel))
        return best, overlap_ratio(best, channel)

    def shifted(self, delta_hz: float, name: str = "") -> "ChannelPlan":
        """The plan translated in frequency by ``delta_hz``."""
        return ChannelPlan(
            name=name or f"{self.name}+{delta_hz / 1e3:g}kHz",
            channels=tuple(c.shifted(delta_hz) for c in self.channels),
        )

    @classmethod
    def from_grid(
        cls, grid: ChannelGrid, indices: Iterable[int], name: str = "plan"
    ) -> "ChannelPlan":
        """Build a plan from grid channel indices."""
        return cls(name=name, channels=tuple(grid.channel(i) for i in indices))


def standard_plans(grid: ChannelGrid, plan_size: int = PLAN_SIZE) -> List[ChannelPlan]:
    """Split a grid into consecutive standard channel plans (Figure 19).

    Plan #1 holds CH0..CH7, plan #2 holds CH8..CH15, and so on.  Operators
    in today's LoRaWANs pick one of these to configure every gateway —
    the homogeneous configuration whose decoder contention the paper
    diagnoses.
    """
    plans = []
    for start in range(0, grid.num_channels - plan_size + 1, plan_size):
        indices = range(start, start + plan_size)
        plans.append(
            ChannelPlan.from_grid(
                grid, indices, name=f"std-{start // plan_size + 1}"
            )
        )
    if not plans:
        # A narrow grid still yields one (short) plan.
        plans.append(
            ChannelPlan.from_grid(
                grid, range(grid.num_channels), name="std-1"
            )
        )
    return plans
