"""Interference, capture, and radio frequency selectivity.

Three effects from the paper are modelled here:

* **Imperfect SF orthogonality** — concurrent transmissions with different
  spreading factors barely disturb each other (tens of dB of isolation),
  while co-SF transmissions require a capture margin (~6 dB) to survive a
  collision.  Thresholds follow the widely used Croce et al. matrix.
* **Partial channel overlap** — an interferer on a frequency-misaligned
  channel is attenuated by the receiver's channel filter proportionally to
  the misalignment.  Calibrated so that >=40 % misalignment keeps PRR above
  80 % even for non-orthogonal data rates (paper Figure 8) and a 20 %
  overlap with non-orthogonal DR raises the reception threshold by
  ~3.3-3.7 dB (Figure 16).
* **Frequency selectivity at detection** — a packet whose center frequency
  is misaligned with a receive channel beyond a small tolerance is
  truncated by the front-end and never reaches the decoder pipeline.
  This is the physical mechanism Strategy 8 exploits to isolate
  coexisting networks *before* decoder allocation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from ..obs import runtime as _obs
from .channels import Channel, overlap_ratio
from .lora import SNR_THRESHOLD_DB, SpreadingFactor

__all__ = [
    "CO_SF_CAPTURE_DB",
    "CAPTURE_THRESHOLD_DB",
    "DETECTION_MIN_OVERLAP",
    "capture_threshold_db",
    "sf_isolation_db",
    "overlap_rejection_db",
    "is_detectable",
    "Interferer",
    "effective_noise_mw",
    "sinr_db",
    "decode_ok",
    "orthogonal",
]

# Co-SF capture margin: a packet survives a same-SF collision when it is
# at least this much stronger than the colliding packet.
CO_SF_CAPTURE_DB = 6.0

# Inter-SF capture thresholds (Croce et al., "Impact of LoRa Imperfect
# Orthogonality"): CAPTURE_THRESHOLD_DB[desired][interferer] is the SIR
# (dB) above which the desired packet is decodable despite the interferer.
# Diagonal entries are the co-SF capture margin; off-diagonal entries are
# negative: the desired packet tolerates much stronger cross-SF signals.
_SF = SpreadingFactor
CAPTURE_THRESHOLD_DB: Dict[SpreadingFactor, Dict[SpreadingFactor, float]] = {
    _SF.SF7: {_SF.SF7: 6, _SF.SF8: -8, _SF.SF9: -9, _SF.SF10: -9, _SF.SF11: -9, _SF.SF12: -9},
    _SF.SF8: {_SF.SF7: -11, _SF.SF8: 6, _SF.SF9: -11, _SF.SF10: -12, _SF.SF11: -13, _SF.SF12: -13},
    _SF.SF9: {_SF.SF7: -15, _SF.SF8: -13, _SF.SF9: 6, _SF.SF10: -13, _SF.SF11: -14, _SF.SF12: -15},
    _SF.SF10: {_SF.SF7: -19, _SF.SF8: -18, _SF.SF9: -17, _SF.SF10: 6, _SF.SF11: -17, _SF.SF12: -18},
    _SF.SF11: {_SF.SF7: -22, _SF.SF8: -22, _SF.SF9: -21, _SF.SF10: -20, _SF.SF11: 6, _SF.SF12: -20},
    _SF.SF12: {_SF.SF7: -25, _SF.SF8: -25, _SF.SF9: -25, _SF.SF10: -26, _SF.SF11: -25, _SF.SF12: 6},
}

# A packet can only be *detected* (preamble lock) on a receive channel
# whose passband covers at least this fraction of the packet's bandwidth.
# Below this, the front-end truncates the signal and the packet never
# consumes a decoder — the isolation primitive of Strategy 8.
DETECTION_MIN_OVERLAP = 0.75

# Channel-filter rejection applied to a partially overlapping interferer:
# 0 dB when perfectly aligned, ramping to this value when fully disjoint.
FULL_MISALIGNMENT_REJECTION_DB = 45.0


def capture_threshold_db(
    desired: SpreadingFactor, interferer: SpreadingFactor
) -> float:
    """SIR (dB) the desired packet needs against a given interferer SF."""
    return CAPTURE_THRESHOLD_DB[SpreadingFactor(desired)][SpreadingFactor(interferer)]


def orthogonal(sf_a: SpreadingFactor, sf_b: SpreadingFactor) -> bool:
    """Whether two spreading factors are (quasi-)orthogonal."""
    return SpreadingFactor(sf_a) != SpreadingFactor(sf_b)


def sf_isolation_db(
    desired: SpreadingFactor, interferer: SpreadingFactor
) -> float:
    """Isolation an interferer suffers due to SF (non-)orthogonality.

    Expressed relative to the co-SF case: co-SF interference has 0 dB
    isolation; cross-SF interference is attenuated by the spread between
    the co-SF capture margin and the (negative) cross-SF threshold.
    """
    return CO_SF_CAPTURE_DB - capture_threshold_db(desired, interferer)


def overlap_rejection_db(overlap: float) -> float:
    """Channel-filter rejection for a partially overlapping interferer.

    Linear ramp in dB from 0 (aligned) to
    :data:`FULL_MISALIGNMENT_REJECTION_DB` (disjoint).  With the default
    45 dB span, a 60 % overlap (40 % misalignment) earns 18 dB rejection —
    enough to keep even non-orthogonal co-SF links above the capture
    margin in the paper's Figure 8 setup.
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap ratio must be in [0, 1], got {overlap}")
    return (1.0 - overlap) * FULL_MISALIGNMENT_REJECTION_DB


def is_detectable(packet_channel: Channel, rx_channel: Channel) -> bool:
    """Whether the front-end passes a packet into the detect pipeline.

    True only for (near-)aligned channels; misaligned coexisting plans
    are filtered here, *before* any decoder resources are consumed.
    """
    return overlap_ratio(packet_channel, rx_channel) >= DETECTION_MIN_OVERLAP


@dataclass(frozen=True)
class Interferer:
    """One concurrent transmission observed while receiving a packet."""

    rssi_dbm: float
    sf: SpreadingFactor
    channel: Channel
    same_network: bool = True


def _dbm_to_mw(dbm: float) -> float:
    return 10.0 ** (dbm / 10.0)


def _mw_to_dbm(mw: float) -> float:
    if mw <= 0:
        return -math.inf
    return 10.0 * math.log10(mw)


def effective_noise_mw(
    noise_dbm: float,
    desired_sf: SpreadingFactor,
    desired_channel: Channel,
    interferers: Iterable[Interferer],
) -> float:
    """Noise plus isolation-weighted interference power (mW).

    Each interferer is attenuated by the channel-filter rejection for its
    frequency overlap and by the SF isolation, then added to the thermal
    noise floor.  This additive model produces the smooth reception
    threshold shifts measured in the paper's Figure 16.
    """
    total = _dbm_to_mw(noise_dbm)
    for intf in interferers:
        ov = overlap_ratio(desired_channel, intf.channel)
        if ov <= 0.0:
            continue
        isolation = overlap_rejection_db(ov) + sf_isolation_db(
            desired_sf, intf.sf
        )
        total += _dbm_to_mw(intf.rssi_dbm - isolation)
    return total


def sinr_db(
    rssi_dbm: float,
    noise_dbm: float,
    desired_sf: SpreadingFactor,
    desired_channel: Channel,
    interferers: Iterable[Interferer],
) -> float:
    """Signal-to-(interference+noise) ratio after isolation weighting."""
    noise_mw = effective_noise_mw(
        noise_dbm, desired_sf, desired_channel, interferers
    )
    return rssi_dbm - _mw_to_dbm(noise_mw)


def decode_ok(
    rssi_dbm: float,
    noise_dbm: float,
    desired_sf: SpreadingFactor,
    desired_channel: Channel,
    interferers: Sequence[Interferer] = (),
) -> bool:
    """Full decode decision for a packet at a gateway channel.

    Conditions:
      1. SINR (with isolation-weighted interference folded into the noise)
         meets the SF demodulation threshold; and
      2. for every co-SF interferer on an (almost) aligned channel — a
         true channel collision — the desired packet captures, i.e. its
         SIR exceeds the co-SF capture margin.
    """
    probe = _obs.PERF
    if probe is not None:
        # Count-only (never timed): this call sits inside the gw.decode
        # phase; items tally the signals folded into the decision.
        probe.count("phy.decode", 1 + len(interferers))
    sf = SpreadingFactor(desired_sf)
    if sinr_db(rssi_dbm, noise_dbm, sf, desired_channel, interferers) < (
        SNR_THRESHOLD_DB[sf]
    ):
        return False
    for intf in interferers:
        ov = overlap_ratio(desired_channel, intf.channel)
        if ov >= DETECTION_MIN_OVERLAP and not orthogonal(sf, intf.sf):
            if rssi_dbm - intf.rssi_dbm < CO_SF_CAPTURE_DB:
                return False
    return True
