"""LoRa physical-layer substrate: modulation, channels, links, interference.

Public surface of the PHY package; see the individual modules for the
detailed models.  Everything here is deterministic under a seed.
"""

from __future__ import annotations

from .lora import (
    CodingRate,
    DataRate,
    DR_TO_SF,
    LoRaParams,
    SF_TO_DR,
    SNR_THRESHOLD_DB,
    SpreadingFactor,
    bitrate_bps,
    preamble_duration_s,
    snr_threshold_db,
    symbol_time_s,
    time_on_air_s,
)
from .channels import (
    Channel,
    ChannelGrid,
    ChannelPlan,
    overlap_hz,
    overlap_ratio,
    standard_plans,
)
from .link import (
    DEFAULT_TIERS,
    DirectionalAntenna,
    DistanceTier,
    LogDistancePathLoss,
    PathLossModel,
    Position,
    max_range_m,
    noise_floor_dbm,
    sensitivity_dbm,
    snr_db,
    tier_for_distance,
)
from .interference import (
    CAPTURE_THRESHOLD_DB,
    CO_SF_CAPTURE_DB,
    DETECTION_MIN_OVERLAP,
    Interferer,
    capture_threshold_db,
    decode_ok,
    is_detectable,
    orthogonal,
    overlap_rejection_db,
    sf_isolation_db,
    sinr_db,
)
from .regions import (
    AS923,
    Band,
    EU868,
    REGULATORY_DB,
    RegionSpectrum,
    TESTBED_16,
    TESTBED_48,
    US915,
    band_grid,
    spectrum_cdf,
)

__all__ = [
    # lora
    "CodingRate", "DataRate", "DR_TO_SF", "LoRaParams", "SF_TO_DR",
    "SNR_THRESHOLD_DB", "SpreadingFactor", "bitrate_bps",
    "preamble_duration_s", "snr_threshold_db", "symbol_time_s",
    "time_on_air_s",
    # channels
    "Channel", "ChannelGrid", "ChannelPlan", "overlap_hz", "overlap_ratio",
    "standard_plans",
    # link
    "DEFAULT_TIERS", "DirectionalAntenna", "DistanceTier",
    "LogDistancePathLoss", "PathLossModel", "Position", "max_range_m",
    "noise_floor_dbm", "sensitivity_dbm", "snr_db", "tier_for_distance",
    # interference
    "CAPTURE_THRESHOLD_DB", "CO_SF_CAPTURE_DB", "DETECTION_MIN_OVERLAP",
    "Interferer", "capture_threshold_db", "decode_ok", "is_detectable",
    "orthogonal", "overlap_rejection_db", "sf_isolation_db", "sinr_db",
    # regions
    "AS923", "Band", "EU868", "REGULATORY_DB", "RegionSpectrum",
    "TESTBED_16", "TESTBED_48", "US915", "band_grid", "spectrum_cdf",
]
