"""Link budget: path loss, shadowing, noise, sensitivity, antennas.

Replaces the paper's physical testbed links (2.1 km x 1.6 km urban area,
SNRs spanning roughly -15..+5 dB) with a deterministic, seeded
log-distance model.  The model is the substrate for reach-ability
(``r_ijl`` in the CP problem), ADR decisions, and the Figure 6/7
experiments.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .lora import (
    DataRate,
    DR_TO_SF,
    SNR_THRESHOLD_DB,
    SpreadingFactor,
)

__all__ = [
    "Position",
    "PathLossModel",
    "LogDistancePathLoss",
    "noise_floor_dbm",
    "snr_db",
    "sensitivity_dbm",
    "max_range_m",
    "DistanceTier",
    "DEFAULT_TIERS",
    "tier_for_distance",
    "DirectionalAntenna",
    "THERMAL_NOISE_DBM_HZ",
    "DEFAULT_NOISE_FIGURE_DB",
]

THERMAL_NOISE_DBM_HZ = -174.0
DEFAULT_NOISE_FIGURE_DB = 6.0


@dataclass(frozen=True)
class Position:
    """A 2-D coordinate in meters."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance in meters."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def bearing_to(self, other: "Position") -> float:
        """Bearing toward another position in degrees [0, 360)."""
        angle = math.degrees(math.atan2(other.y - self.y, other.x - self.x))
        angle %= 360.0
        # A tiny negative angle can fold to exactly 360.0 in floats.
        return 0.0 if angle >= 360.0 else angle


def noise_floor_dbm(
    bandwidth_hz: float, noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB
) -> float:
    """Receiver noise floor ``-174 + 10 log10(BW) + NF`` in dBm."""
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    return THERMAL_NOISE_DBM_HZ + 10.0 * math.log10(bandwidth_hz) + noise_figure_db


def snr_db(
    rssi_dbm: float,
    bandwidth_hz: float = 125_000.0,
    noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB,
) -> float:
    """SNR of a received signal given its RSSI."""
    return rssi_dbm - noise_floor_dbm(bandwidth_hz, noise_figure_db)


def sensitivity_dbm(
    sf: SpreadingFactor,
    bandwidth_hz: float = 125_000.0,
    noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB,
) -> float:
    """Receiver sensitivity: the RSSI at the demodulation SNR threshold.

    LoRa radios decode below the noise floor (the paper cites -148 dBm),
    which is why directional antennas alone cannot suppress contention
    (section 4.2.3 / Figure 7).
    """
    return noise_floor_dbm(bandwidth_hz, noise_figure_db) + SNR_THRESHOLD_DB[sf]


class PathLossModel:
    """Interface: deterministic path loss between two positions."""

    def path_loss_db(self, a: Position, b: Position) -> float:
        raise NotImplementedError

    def rssi_dbm(
        self,
        tx_power_dbm: float,
        a: Position,
        b: Position,
        tx_gain_db: float = 0.0,
        rx_gain_db: float = 0.0,
    ) -> float:
        """Received power over the link ``a -> b``."""
        return (
            tx_power_dbm + tx_gain_db + rx_gain_db - self.path_loss_db(a, b)
        )


def _pair_hash(a: Position, b: Position, seed: int) -> float:
    """A stable uniform(0,1) draw for an unordered position pair.

    Shadowing must be symmetric and reproducible without storing state,
    so it is derived from a hash of the (order-normalized) endpoints.
    """
    p, q = sorted([(a.x, a.y), (b.x, b.y)])
    digest = hashlib.sha256(
        f"{seed}:{p[0]:.3f},{p[1]:.3f}|{q[0]:.3f},{q[1]:.3f}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class LogDistancePathLoss(PathLossModel):
    """Log-distance path loss with lognormal shadowing.

    ``PL(d) = PL(d0) + 10 n log10(d / d0) + X_sigma``, where ``X_sigma``
    is a zero-mean Gaussian draw that is deterministic per link (derived
    from the endpoint coordinates and ``seed``), so repeated queries give
    identical links — matching a static urban deployment.

    Defaults are calibrated to the paper's urban testbed: with a 14 dBm
    transmitter, link SNRs land in the measured -15..+5 dB range at
    0.3-1 km, and the DR5 (SF7 / 8 dBm) communication range is ~450 m.
    """

    pl0_db: float = 105.6
    d0_m: float = 40.0
    exponent: float = 2.85
    sigma_db: float = 6.0
    seed: int = 0

    def path_loss_db(self, a: Position, b: Position) -> float:
        """Deterministic path loss for the link ``a <-> b``."""
        d = max(a.distance_to(b), 1.0)
        mean = self.pl0_db + 10.0 * self.exponent * math.log10(d / self.d0_m)
        if self.sigma_db <= 0:
            return mean
        u = _pair_hash(a, b, self.seed)
        # Box-Muller using two deterministic uniforms derived from u.
        u1 = max(u, 1e-12)
        u2 = _pair_hash(a, b, self.seed + 1)
        gauss = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return mean + self.sigma_db * gauss


def max_range_m(
    model: LogDistancePathLoss,
    tx_power_dbm: float,
    sf: SpreadingFactor,
    bandwidth_hz: float = 125_000.0,
) -> float:
    """Mean communication range (ignoring shadowing) at a given SF.

    Solves the mean log-distance equation for the distance at which RSSI
    hits the SF's sensitivity.  Higher SFs reach farther — the basis of
    the paper's distance-tier (ADR/TPC) model.
    """
    budget_db = tx_power_dbm - sensitivity_dbm(sf, bandwidth_hz)
    exp = (budget_db - model.pl0_db) / (10.0 * model.exponent)
    return model.d0_m * (10.0 ** exp)


@dataclass(frozen=True)
class DistanceTier:
    """A discrete communication-range level (the CP problem's ``DR`` set).

    The paper simplifies ADR and transmit-power control into discrete
    transmission distances; each tier maps to a (data rate, TX power)
    pair via a mapping table (section 4.3.1).
    """

    index: int
    dr: DataRate
    tx_power_dbm: float
    nominal_range_m: float

    @property
    def sf(self) -> SpreadingFactor:
        """Spreading factor of the tier's data rate."""
        return DR_TO_SF[self.dr]


# Default mapping table: shorter tiers use faster data rates and lower
# power; the longest tier uses SF12 at full power.  Nominal ranges are
# mean ranges under the default LogDistancePathLoss at the tier's power.
DEFAULT_TIERS: Tuple[DistanceTier, ...] = (
    DistanceTier(0, DataRate.DR5, 8.0, 450.0),
    DistanceTier(1, DataRate.DR4, 10.0, 645.0),
    DistanceTier(2, DataRate.DR3, 12.0, 925.0),
    DistanceTier(3, DataRate.DR2, 14.0, 1_330.0),
    DistanceTier(4, DataRate.DR1, 14.0, 1_630.0),
    DistanceTier(5, DataRate.DR0, 14.0, 2_000.0),
)


def tier_for_distance(
    distance_m: float, tiers: Sequence[DistanceTier] = DEFAULT_TIERS
) -> Optional[DistanceTier]:
    """The cheapest tier whose nominal range covers ``distance_m``.

    Returns ``None`` when the distance exceeds every tier (node out of
    reach even at DR0 / full power).
    """
    for tier in sorted(tiers, key=lambda t: t.nominal_range_m):
        if distance_m <= tier.nominal_range_m:
            return tier
    return None


@dataclass(frozen=True)
class DirectionalAntenna:
    """A sectorized antenna pattern (Figure 7 study).

    Models the RAKwireless 12 dBi panel: full gain inside the half-power
    beamwidth, then a attenuation ramp of 14..40 dB off-boresight — large
    in absolute terms, yet not enough to push LoRa packets below the
    sensitivity floor, which is why Strategy 6 fails.
    """

    boresight_deg: float = 0.0
    beamwidth_deg: float = 60.0
    peak_gain_db: float = 12.0
    min_rejection_db: float = 14.0
    max_rejection_db: float = 40.0

    def gain_db(self, bearing_deg: float) -> float:
        """Antenna gain toward ``bearing_deg`` (degrees)."""
        off = abs((bearing_deg - self.boresight_deg + 180.0) % 360.0 - 180.0)
        half = self.beamwidth_deg / 2.0
        if off <= half:
            return self.peak_gain_db
        # Linear rejection ramp from the beam edge to the back lobe.
        frac = min((off - half) / (180.0 - half), 1.0)
        rejection = self.min_rejection_db + frac * (
            self.max_rejection_db - self.min_rejection_db
        )
        return self.peak_gain_db - rejection
