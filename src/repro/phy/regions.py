"""Regional ISM-band definitions and the regulatory spectrum database.

Provides the spectrum blocks used throughout the paper's testbed
(AS923-style 923-925 MHz, the 916.8-921.6 MHz block of section 5.1, and
the US915 / EU868 standard bands), plus the country-level regulatory
database behind Appendix A / Figure 18 (spectrum available to LoRaWAN per
country, of which >70 % of regions allow less than 6.5 MHz).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .channels import ChannelGrid

__all__ = [
    "Band",
    "US915",
    "EU868",
    "AS923",
    "TESTBED_48",
    "TESTBED_16",
    "band_grid",
    "RegionSpectrum",
    "REGULATORY_DB",
    "spectrum_cdf",
]


@dataclass(frozen=True)
class Band:
    """An ISM band block available to LoRaWAN uplinks."""

    name: str
    start_hz: float
    stop_hz: float

    @property
    def width_hz(self) -> float:
        """Total block width in Hz."""
        return self.stop_hz - self.start_hz

    def grid(self, spacing_hz: float = 200_000.0) -> ChannelGrid:
        """The standard channel grid covering this band."""
        return ChannelGrid(
            start_hz=self.start_hz, width_hz=self.width_hz, spacing_hz=spacing_hz
        )


US915 = Band("US915", 902.3e6 - 0.1e6, 914.9e6 + 0.1e6)
EU868 = Band("EU868", 863.0e6, 870.0e6)
AS923 = Band("AS923", 920.0e6, 925.0e6)

# The paper's testbed spectrum blocks:
#  - section 5.1.1: 916.8-921.6 MHz (4.8 MHz -> 24 channels -> 144 users)
#  - section 2.2 / 5.1.4: a 1.6 MHz block (8 channels -> 48 users theory)
TESTBED_48 = Band("testbed-4.8MHz", 916.8e6, 921.6e6)
TESTBED_16 = Band("testbed-1.6MHz", 923.0e6, 924.6e6)


def band_grid(band: Band, spacing_hz: float = 200_000.0) -> ChannelGrid:
    """Convenience wrapper: the channel grid of a band."""
    return band.grid(spacing_hz)


@dataclass(frozen=True)
class RegionSpectrum:
    """Spectrum a country/region authorizes for LoRaWAN (Appendix A)."""

    region: str
    uplink_mhz: float
    downlink_mhz: float

    @property
    def overall_mhz(self) -> float:
        """Total authorized bandwidth (uplink + dedicated downlink)."""
        return self.uplink_mhz + self.downlink_mhz


def _build_regulatory_db() -> List[RegionSpectrum]:
    """Synthesize the ~200-region regulatory table of Figure 18.

    The exact per-country numbers are not published in the paper; the
    distribution is reconstructed so the headline statistic holds: the
    authorized spectrum is below 6.5 MHz in over 70 % of regions, with a
    small tail of wide allocations (US915-style 13 MHz uplink plus 13 MHz
    downlink) and a large body of EU868-style narrow allocations.
    """
    db: List[RegionSpectrum] = []
    # US915-style wide allocations (FCC-aligned regions).
    wide = [
        "United States", "Canada", "Mexico", "Brazil", "Argentina",
        "Chile", "Colombia", "Peru", "Australia", "New Zealand",
    ]
    for region in wide:
        db.append(RegionSpectrum(region, uplink_mhz=13.0, downlink_mhz=13.0))
    # AU915-style medium-wide allocations (partial FCC-style bands).
    for i in range(30):
        db.append(
            RegionSpectrum(
                f"915-band-region-{i + 1:02d}", uplink_mhz=8.0, downlink_mhz=0.0
            )
        )
    # AS923-style medium allocations.
    medium = [
        "Japan", "Singapore", "Thailand", "Indonesia", "Malaysia",
        "Philippines", "Vietnam", "Taiwan", "Hong Kong", "South Korea",
        "Israel", "Laos", "Cambodia", "Brunei", "Myanmar",
    ]
    for region in medium:
        db.append(RegionSpectrum(region, uplink_mhz=5.0, downlink_mhz=0.0))
    # EU868-style narrow allocations dominate the count (CEPT members,
    # Africa and parts of Asia following the ETSI template).
    narrow_count = 110
    for i in range(narrow_count):
        db.append(
            RegionSpectrum(
                f"EU868-region-{i + 1:03d}", uplink_mhz=2.0, downlink_mhz=0.25
            )
        )
    # IN865 / RU864 style very narrow allocations.
    for i in range(35):
        db.append(
            RegionSpectrum(
                f"865-band-region-{i + 1:02d}", uplink_mhz=1.0, downlink_mhz=0.5
            )
        )
    return db


REGULATORY_DB: List[RegionSpectrum] = _build_regulatory_db()


def spectrum_cdf(
    db: Sequence[RegionSpectrum] = None,
    kind: str = "overall",
) -> List[Tuple[float, float]]:
    """CDF of authorized spectrum across regions (Figure 18, right).

    Args:
        db: Regulatory database (defaults to :data:`REGULATORY_DB`).
        kind: ``"uplink"``, ``"downlink"`` or ``"overall"``.

    Returns:
        Sorted ``(bandwidth_mhz, cumulative_fraction)`` points.
    """
    records = list(REGULATORY_DB if db is None else db)
    if not records:
        raise ValueError("regulatory database is empty")
    selectors = {
        "uplink": lambda r: r.uplink_mhz,
        "downlink": lambda r: r.downlink_mhz,
        "overall": lambda r: r.overall_mhz,
    }
    if kind not in selectors:
        raise ValueError(f"unknown CDF kind {kind!r}")
    values = sorted(selectors[kind](r) for r in records)
    n = len(values)
    return [(v, (i + 1) / n) for i, v in enumerate(values)]
