"""Command-line interface: list, run, render, and trace paper experiments.

Usage::

    python -m repro.tools list
    python -m repro.tools run fig12a --seed 3 --json out.json
    python -m repro.tools -v run chaos --trace chaos.jsonl --metrics chaos.prom
    python -m repro.tools render fig2a
    python -m repro.tools run chaos --trace chaos.jsonl --health health.json
    python -m repro.tools trace summarize chaos.jsonl
    python -m repro.tools trace render chaos.jsonl --bucket-s 2
    python -m repro.tools trace diff a.jsonl b.jsonl
    python -m repro.tools trace merge campaigns/chaos/traces --out merged.jsonl
    python -m repro.tools trace query merged.jsonl "type=gw.reception outcome=gateway_offline"
    python -m repro.tools trace explain merged.jsonl 1:17:0
    python -m repro.tools campaign run scenarios/chaos-campaign.yaml --jobs 4 --trace
    python -m repro.tools regress a.jsonl b.jsonl --rel-tol 0.1
    python -m repro.tools campaign run scenarios/fig02.yaml --jobs 4
    python -m repro.tools campaign status campaigns/fig02
    python -m repro.tools campaign status campaigns/fig02 --live
    python -m repro.tools campaign report campaigns/fig02 --json report.json
    python -m repro.tools campaign diff campaigns/fig02 other/fig02
    python -m repro.tools profile scenarios/fig04.yaml
    python -m repro.tools profile scenarios/fig04.yaml --json perf.json
    python -m repro.tools watch --trace chaos.jsonl --once
    python -m repro.tools watch --campaign campaigns/fig02
    python -m repro.tools drill --seed 7 --max-recovery-s 2.0
    python -m repro.tools lint src tests --format json
    python -m repro.tools lint --baseline lint-baseline.json
    python -m repro.tools lint src tests --deep
    python -m repro.tools lint src tests --deep --changed
    python -m repro.tools lint src tests --deep --format sarif > lint.sarif

``run`` executes an experiment driver and prints (or saves) its series
as JSON — with ``--trace`` / ``--metrics`` the run executes inside an
observability session and exports the JSONL trace / Prometheus
snapshot.  ``render`` draws the headline series as an ASCII chart.
``trace`` inspects a previously written JSONL trace (``diff`` compares
two); ``trace merge`` joins per-process shards into one deterministic
causally-ordered trace, ``trace query`` filters with a small
``field OP value`` expression language, and ``trace explain`` walks one
packet's cross-process causal chain and highlights the event that
decided its outcome.  ``regress`` compares two run artifacts against tolerances and
exits non-zero on drift.  ``campaign`` compiles a declarative scenario
spec (:mod:`repro.scenarios`) into its seeded sweep grid and runs it in
parallel with crash-tolerant resume (:mod:`repro.campaign`); ``campaign
status --live`` adds per-worker heartbeats and a fleet ETA.
``profile`` executes one run of a scenario spec under the performance
observatory (:mod:`repro.obs.perf`) and renders throughput, the phase
table, a span flame and cProfile hotspots — ``--json`` for the raw
report.  ``watch`` renders a live health dashboard from an exporter
URL, a growing trace file, or a campaign directory's fleet telemetry.  ``drill`` runs the
Master failover drill (:func:`repro.faults.drill.run_drill`): crash
the Master mid-campaign, recover from snapshot + journal, exit
non-zero if any crash-safety invariant fails.  ``lint`` runs the
determinism & invariant linter (:mod:`repro.lint`) over the tree;
``--deep`` adds the whole-program passes (call-graph purity, lock
discipline, hot-loop hygiene), ``--changed [REF]`` restricts reporting
to files touched vs a git ref, and ``--format github``/``sarif`` emit
CI annotations / a code-scanning log.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
from typing import Callable, Dict, List, Optional, Sequence

from .. import experiments
from ..lint.cli import add_lint_arguments, run_lint
from ..obs import observe, setup_logging
from ..obs.manifest import Stopwatch, build_manifest
from ..obs.recorder import load_trace
from ..obs.regress import Tolerance, compare_runs, trace_diff
from ..obs.timeline import filter_events, render_occupancy, summarize_trace
from .ascii_chart import bar_chart, line_chart
from .watch import watch as run_watch

__all__ = ["main", "EXPERIMENTS"]

# name -> (driver, one-line description)
EXPERIMENTS: Dict[str, tuple] = {
    "fig2a": (experiments.run_fig2a, "capacity gap: received vs concurrency"),
    "fig2b": (experiments.run_fig2b, "two coexisting networks share the 16-cap"),
    "fig3ab": (experiments.run_fig3ab, "FCFS lock-on order (schemes a/b)"),
    "fig3cd": (experiments.run_fig3cd, "SNR / crowdedness do not matter"),
    "fig3ef": (experiments.run_fig3ef, "foreign packets consume decoders"),
    "fig4a": (experiments.run_fig4a, "loss causes vs user scale"),
    "fig4b": (experiments.run_fig4b, "loss causes vs coexisting networks"),
    "fig5a": (experiments.run_fig5a, "fewer channels per gateway"),
    "fig5b": (experiments.run_fig5b, "heterogeneous channel configs"),
    "fig6": (experiments.run_fig6, "ADR cell shrinkage and DR skew"),
    "fig7": (experiments.run_fig7, "directional antennas"),
    "fig8": (experiments.run_fig8, "PRR vs channel overlap"),
    "fig12a": (experiments.run_fig12a, "capacity vs gateway count"),
    "fig12b": (experiments.run_fig12b, "capacity vs spectrum"),
    "fig12c": (experiments.run_fig12c, "contention-management CDF"),
    "fig12de": (experiments.run_fig12de, "spectrum sharing, 1-6 networks"),
    "fig13": (experiments.run_fig13, "scaled ops vs state of the art"),
    "fig14": (experiments.run_fig14, "partial adoption"),
    "fig15": (experiments.run_fig15, "fairness under load"),
    "fig16": (experiments.run_fig16, "reception thresholds"),
    "fig17a": (experiments.run_fig17a, "upgrade latency vs scale"),
    "fig17b": (experiments.run_fig17b, "upgrade latency, coexisting nets"),
    "fig18": (experiments.run_fig18, "regulatory spectrum CDF"),
    "fig21": (experiments.run_fig21, "53-week expansion"),
    "table4": (experiments.run_table4, "COTS gateway capacities"),
    "ablation": (experiments.run_ablation, "planner component ablation"),
    "chaos": (experiments.run_chaos, "fault injection + resilience (ext.)"),
    "disruption": (experiments.run_disruption, "live-upgrade disruption (ext.)"),
    "erlang": (experiments.run_erlang_validation, "decoder loss vs Erlang-B (ext.)"),
    "strategy3": (experiments.run_strategy3, "hardware upgrade (ext.)"),
    "strategy4": (experiments.run_strategy4, "more spectrum (ext.)"),
}


def _call_driver(name: str, seed: int, fast: Optional[bool]):
    driver, _ = EXPERIMENTS[name]
    kwargs = {}
    params = inspect.signature(driver).parameters
    if "seed" in params:
        kwargs["seed"] = seed
    if fast is not None and "fast" in params:
        kwargs["fast"] = fast
    return driver(**kwargs)


def _render(name: str, result) -> str:
    """Best-effort ASCII rendering of an experiment's headline series."""
    if name == "fig2a":
        return line_chart(
            result["n"],
            {k: result[k] for k in ("oracle", "gw1", "gw3")},
            title="received packets vs offered concurrency",
        )
    if name == "fig12a":
        keys = ("oracle", "standard", "random_cp", "alphawan_full")
        return line_chart(
            result["gateways"],
            {k: result[k] for k in keys},
            title="concurrent-user capacity vs gateways",
        )
    if name == "fig13":
        return line_chart(
            result["users"],
            {k: v for k, v in result["prr"].items()},
            title="PRR vs emulated users",
        )
    if name == "fig21":
        weeks = result["week"]
        return line_chart(
            weeks,
            result["prr"],
            title="weekly PRR over the expansion year",
        )
    if name == "table4":
        return bar_chart(
            [row["model"] for row in result],
            [row["measured_capacity"] for row in result],
            unit=" users",
        )
    if name == "fig5a":
        return bar_chart(
            [f"{c} ch/GW" for c in result["channels_per_gw"]],
            result["capacity"],
            unit=" users",
        )
    if name == "ablation":
        return bar_chart(list(result), list(result.values()), unit=" users")
    if name == "chaos":
        series = result["bucketed_prr"]
        xs = [i * result["bucket_s"] for i in range(len(series))]
        return line_chart(
            xs,
            {"prr": series},
            title="PRR through the chaos window (crash at t=30 s)",
        )
    # Generic fallbacks.
    if isinstance(result, dict):
        scalars = {
            k: v for k, v in result.items() if isinstance(v, (int, float))
        }
        if scalars:
            return bar_chart(list(scalars), list(scalars.values()))
    return "(no renderer for this experiment; use `run` for raw JSON)"


def _run_observed(args, fast: bool):
    """Execute one driver, optionally inside an observability session.

    Returns ``(result, manifest)`` — the manifest always describes the
    run; when ``--trace`` / ``--metrics`` were requested the artifacts
    are written before returning (write notices go to stderr so stdout
    stays parseable JSON).
    """
    watch = Stopwatch()
    manifest = build_manifest(
        experiment=args.name,
        seed=args.seed,
        config={"seed": args.seed, "fast": fast},
        extra={"fast": fast},
    )
    if not (args.trace_path or args.metrics_path or args.health_path):
        result = _call_driver(args.name, args.seed, fast)
        manifest["wall_time_s"] = watch.elapsed_s()
        return result, manifest
    with observe(
        trace=bool(args.trace_path),
        metrics=bool(args.metrics_path),
        spans=False,
        health=bool(args.health_path),
        manifest=manifest,
    ) as session:
        result = _call_driver(args.name, args.seed, fast)
    manifest["wall_time_s"] = watch.elapsed_s()
    if session.recorder is not None and args.trace_path:
        session.recorder.manifest["wall_time_s"] = manifest["wall_time_s"]
        session.recorder.write_jsonl(args.trace_path)
        print(
            f"wrote {args.trace_path} ({len(session.recorder)} events)",
            file=sys.stderr,
        )
    if session.metrics is not None:
        session.metrics.write_prometheus(args.metrics_path)
        print(f"wrote {args.metrics_path}", file=sys.stderr)
    if session.health is not None:
        session.health.evaluate()
        with open(args.health_path, "w") as fh:
            json.dump(session.health.report(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.health_path}", file=sys.stderr)
    return result, manifest


def _refuse_ambiguous_trace(path: str, command: str) -> Optional[str]:
    """Reject input one single-trace command cannot interpret.

    Returns an error message for a directory of shards or a file with
    several manifest lines (concatenated shards); ``None`` when the
    path is a plain single trace.
    """
    if os.path.isdir(path):
        return (
            f"trace {command}: {path!r} is a directory of shards — "
            "ambiguous for a single-trace command; combine it first "
            f"with 'repro.tools trace merge {path} --out merged.jsonl'"
        )
    events = load_trace(path)
    manifests = sum(1 for ev in events if ev.get("type") == "manifest")
    if manifests > 1:
        return (
            f"trace {command}: {path!r} carries {manifests} manifests "
            "(concatenated shards?) — concatenation loses causal order; "
            "combine the original shards with 'repro.tools trace merge'"
        )
    return None


def _trace_merge_command(args) -> int:
    from ..obs.merge import MergeError, discover_shards, merge_to_jsonl

    try:
        paths: List[str] = []
        for path in args.paths:
            paths.extend(discover_shards(path))
        jsonl = merge_to_jsonl(paths)
    except (MergeError, OSError) as exc:
        print(f"trace merge: {exc}", file=sys.stderr)
        return 2
    if args.out_path:
        with open(args.out_path, "w") as fh:
            fh.write(jsonl)
        print(
            f"wrote {args.out_path} ({len(paths)} shards, "
            f"{jsonl.count(chr(10)) - 1} events)",
            file=sys.stderr,
        )
    else:
        sys.stdout.write(jsonl)
    return 0


def _trace_command(args) -> int:
    if args.trace_command == "merge":
        return _trace_merge_command(args)
    refusal = _refuse_ambiguous_trace(args.path, args.trace_command)
    if refusal is None and args.trace_command == "diff":
        refusal = _refuse_ambiguous_trace(args.path_b, args.trace_command)
    if refusal is not None:
        print(refusal, file=sys.stderr)
        return 2
    events = load_trace(args.path)
    if args.trace_command == "query":
        from ..obs.query import QueryError, query_events

        try:
            selected = query_events(events, args.expr)
        except QueryError as exc:
            print(f"trace query: {exc}", file=sys.stderr)
            return 2
        shown = selected if args.limit is None else selected[: args.limit]
        for ev in shown:
            print(json.dumps(ev, separators=(",", ":")))
        if len(shown) < len(selected):
            print(
                f"... {len(selected) - len(shown)} more "
                f"(of {len(selected)} matching)",
                file=sys.stderr,
            )
        return 0
    if args.trace_command == "explain":
        from ..obs.query import ExplainError, explain_packet, render_explain

        try:
            report = explain_packet(events, args.packet, shard=args.shard)
        except ExplainError as exc:
            print(f"trace explain: {exc}", file=sys.stderr)
            return 2
        if args.json_path:
            with open(args.json_path, "w") as fh:
                fh.write(json.dumps(report, indent=2, default=str) + "\n")
            print(f"wrote {args.json_path}", file=sys.stderr)
        print(render_explain(report))
        return 0
    if args.trace_command == "summarize":
        print(json.dumps(summarize_trace(events), indent=2, default=str))
        return 0
    if args.trace_command == "filter":
        selected = filter_events(
            events,
            etype=args.etype,
            gateway=args.gateway,
            node=args.node,
            network=args.network,
        )
        shown = selected if args.limit is None else selected[: args.limit]
        for ev in shown:
            print(json.dumps(ev, separators=(",", ":")))
        if len(shown) < len(selected):
            print(
                f"... {len(selected) - len(shown)} more "
                f"(of {len(selected)} matching)",
                file=sys.stderr,
            )
        return 0
    if args.trace_command == "render":
        print(render_occupancy(events, bucket_s=args.bucket_s))
        return 0
    if args.trace_command == "diff":
        events_b = load_trace(args.path_b)
        print(json.dumps(trace_diff(events, events_b), indent=2))
        return 0
    return 2


def _regress_command(args) -> int:
    tolerances = {}
    for spec in args.tol:
        metric, _, value = spec.partition("=")
        if not metric or not value:
            print(f"regress: bad --tol {spec!r} (want METRIC=REL)", file=sys.stderr)
            return 2
        tolerances[metric] = Tolerance(
            rel_tol=float(value), abs_tol=args.abs_tol
        )
    try:
        report = compare_runs(
            args.path_a,
            args.path_b,
            tolerances=tolerances,
            default=Tolerance(rel_tol=args.rel_tol, abs_tol=args.abs_tol),
        )
    except (OSError, ValueError) as exc:
        print(f"regress: {exc}", file=sys.stderr)
        return 2
    payload = json.dumps(report, indent=2)
    if args.json_path:
        with open(args.json_path, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.json_path}", file=sys.stderr)
    else:
        print(payload)
    if report["status"] != "pass":
        for check in report["regressions"]:
            print(
                f"regression: {check['metric']} "
                f"{check['a']} -> {check['b']}",
                file=sys.stderr,
            )
        return 1
    return 0


def _campaign_command(args) -> int:
    from ..campaign import (
        CampaignError,
        campaign_diff,
        campaign_report,
        campaign_status,
        fleet_status,
        run_campaign,
    )
    from ..scenarios import SpecError, YamlError, load_spec

    def emit(payload: Dict, json_path: Optional[str]) -> None:
        text = json.dumps(payload, indent=2, default=str)
        if json_path:
            with open(json_path, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {json_path}", file=sys.stderr)
        else:
            print(text)

    try:
        if args.campaign_command == "run":
            spec = load_spec(args.spec)
            out_dir = args.out_dir or os.path.join("campaigns", spec.name)
            summary = run_campaign(
                spec,
                out_dir,
                jobs=args.jobs,
                resume=not args.no_resume,
                progress=lambda msg: print(msg, file=sys.stderr),
                trace=args.trace,
            )
            emit(summary, args.json_path)
            return 1 if summary["failed"] else 0
        if args.campaign_command == "status":
            if args.live:
                from .watch import render_fleet

                status = fleet_status(args.dir)
                if args.json_path:
                    emit(status, args.json_path)
                else:
                    print(render_fleet(status))
                return 0
            status = campaign_status(args.dir)
            emit(status, args.json_path)
            return 0
        if args.campaign_command == "report":
            emit(campaign_report(args.dir), args.json_path)
            return 0
        if args.campaign_command == "diff":
            report = campaign_diff(
                args.dir_a,
                args.dir_b,
                default=Tolerance(rel_tol=args.rel_tol, abs_tol=args.abs_tol),
            )
            emit(report, args.json_path)
            if report["status"] != "pass":
                for run in report["runs"]:
                    if run["status"] != "pass":
                        print(f"campaign diff: run {run['key']} drifted", file=sys.stderr)
                return 1
            return 0
    except (OSError, CampaignError, SpecError, YamlError) as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2
    return 2


def _profile_command(args) -> int:
    from ..obs import observe
    from ..obs.perf import (
        render_hotspots,
        render_phase_table,
        render_throughput,
        run_profiled,
    )
    from ..obs.profiling import render_flame
    from ..scenarios import SpecError, YamlError, execute_run, load_spec

    try:
        spec = load_spec(args.spec)
    except (OSError, SpecError, YamlError) as exc:
        print(f"profile: {exc}", file=sys.stderr)
        return 2
    runs = spec.runs()
    if not 0 <= args.run_index < len(runs):
        print(
            f"profile: --run-index {args.run_index} out of range "
            f"(spec has {len(runs)} runs)",
            file=sys.stderr,
        )
        return 2
    run = runs[args.run_index]
    if not args.no_warmup:
        # Warm-up run outside the probe: without it, first-import and
        # cache-fill costs dominate the wall time and the phase table
        # attributes almost nothing (cold attribution can drop below
        # 15% on small scenarios; warmed, it sits above 90%).
        execute_run(run)
    with observe(
        trace=False, metrics=False, spans=not args.no_flame, health=False
    ) as session:
        result, report = run_profiled(
            lambda: execute_run(run),
            sample_every=args.sample_every,
            cprofile=not args.no_cprofile,
            memory=args.memory,
            top_n=args.top,
            flame=(
                session.spans.flame_summary if session.spans is not None else None
            ),
        )
    payload = {
        "spec": spec.name,
        "spec_path": args.spec,
        "run_id": run.run_id,
        "run_index": run.index,
        "seed": run.seed,
        "result_kind": result.get("kind") if isinstance(result, dict) else None,
        "report": report,
    }
    if args.json_path:
        text = json.dumps(payload, indent=2, default=str)
        if args.json_path == "-":
            print(text)
        else:
            with open(args.json_path, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.json_path}", file=sys.stderr)
        return 0
    header = f"profile: {spec.name} run {run.run_id} (seed {run.seed})"
    print(header)
    print("=" * len(header))
    print(render_throughput(report))
    print()
    print(render_phase_table(report))
    flame = report["wall"].get("flame")
    if flame:
        print()
        print("spans (self-time ordered):")
        print(render_flame(flame))
    if not args.no_cprofile:
        print()
        print(render_hotspots(report))
    return 0


def _drill_bench_record(manifest, report, session) -> Dict:
    """One BENCH-trajectory record for a failover drill run.

    Matches the ``benchmarks/`` format ({date, duration_s, events,
    event_counts}); everything under ``events`` except the wall-clock
    recovery time is seed-deterministic, so ``regress`` can gate on it.
    """
    counts: Dict[str, int] = {}
    if session.recorder is not None:
        for ev in session.recorder.events:
            counts[ev.etype] = counts.get(ev.etype, 0) + 1
    return {
        "date": manifest["started_at"],
        "duration_s": manifest["wall_time_s"],
        "events": {
            "operators": report.operators,
            "crash_at_request": report.crash_at_request,
            "journal_ops": report.journal_ops,
            "duplicate_grants": report.duplicate_grants,
            "lost_assignments": report.lost_assignments,
            "resumes_ok": report.resumes_ok,
            "epoch_after": report.epoch_after,
            "client_retries": report.client_retries,
            "recovery_wall_s": report.recovery_wall_s,
            "passed": int(report.passed),
        },
        "event_counts": counts,
    }


def _drill_command(args) -> int:
    from ..faults.drill import run_drill
    from ..phy.regions import TESTBED_16

    watch = Stopwatch()
    manifest = build_manifest(
        experiment="drill",
        seed=args.seed,
        config={
            "seed": args.seed,
            "operators": args.operators,
            "crash_at": args.crash_at,
            "snapshot_after": args.snapshot_after,
        },
    )
    with observe(
        trace=True,
        metrics=bool(args.metrics_path),
        spans=False,
        health=False,
        manifest=manifest,
    ) as session:
        report = run_drill(
            TESTBED_16.grid(),
            out_dir=args.out_dir,
            seed=args.seed,
            operators=args.operators,
            crash_at_request=args.crash_at,
            snapshot_after=args.snapshot_after,
            max_recovery_s=args.max_recovery_s,
        )
    manifest["wall_time_s"] = watch.elapsed_s()
    if args.trace_path and session.recorder is not None:
        session.recorder.manifest["wall_time_s"] = manifest["wall_time_s"]
        session.recorder.write_jsonl(args.trace_path)
        print(
            f"wrote {args.trace_path} ({len(session.recorder)} events)",
            file=sys.stderr,
        )
    if args.metrics_path and session.metrics is not None:
        session.metrics.write_prometheus(args.metrics_path)
        print(f"wrote {args.metrics_path}", file=sys.stderr)
    if args.bench_path:
        history = []
        if os.path.exists(args.bench_path):
            with open(args.bench_path) as fh:
                history = json.load(fh)
        history.append(_drill_bench_record(manifest, report, session))
        with open(args.bench_path, "w") as fh:
            json.dump(history, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.bench_path}", file=sys.stderr)
    result = report.to_dict()
    result["manifest"] = manifest
    payload = json.dumps(result, indent=2, default=str)
    if args.json_path:
        with open(args.json_path, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.json_path}", file=sys.stderr)
    else:
        print(payload)
    if not report.passed:
        for failure in report.failures:
            print(f"drill failure: {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.tools",
        description="Run and render the AlphaWAN paper reproductions.",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more logging (-v info, -vv debug)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="errors only",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run an experiment, print JSON")
    run_p.add_argument("name", choices=sorted(EXPERIMENTS))
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--json", dest="json_path", default=None)
    run_p.add_argument(
        "--full",
        action="store_true",
        help="use the full (slow) solver settings where applicable",
    )
    run_p.add_argument(
        "--trace",
        dest="trace_path",
        default=None,
        help="record a structured event trace to this JSONL file",
    )
    run_p.add_argument(
        "--metrics",
        dest="metrics_path",
        default=None,
        help="write a Prometheus-text metrics snapshot to this file",
    )
    run_p.add_argument(
        "--health",
        dest="health_path",
        default=None,
        help="run with the health observatory and write its report here",
    )

    render_p = sub.add_parser("render", help="run and draw an ASCII chart")
    render_p.add_argument("name", choices=sorted(EXPERIMENTS))
    render_p.add_argument("--seed", type=int, default=0)

    trace_p = sub.add_parser("trace", help="inspect a JSONL trace file")
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    sum_p = trace_sub.add_parser(
        "summarize", help="aggregate view: events, packets, outcomes"
    )
    sum_p.add_argument("path")
    filt_p = trace_sub.add_parser(
        "filter", help="select events by type / gateway / node / network"
    )
    filt_p.add_argument("path")
    filt_p.add_argument("--type", dest="etype", default=None)
    filt_p.add_argument("--gateway", type=int, default=None)
    filt_p.add_argument("--node", type=int, default=None)
    filt_p.add_argument("--network", type=int, default=None)
    filt_p.add_argument("--limit", type=int, default=None)
    rend_p = trace_sub.add_parser(
        "render", help="ASCII decoder-occupancy timeline"
    )
    rend_p.add_argument("path")
    rend_p.add_argument("--bucket-s", dest="bucket_s", type=float, default=1.0)
    diff_p = trace_sub.add_parser(
        "diff", help="structured diff of two trace files"
    )
    diff_p.add_argument("path")
    diff_p.add_argument("path_b")
    merge_p = trace_sub.add_parser(
        "merge",
        help="combine per-process shards into one causally-ordered trace",
    )
    merge_p.add_argument(
        "paths",
        nargs="+",
        help="shard files, or directories of shards (flight dumps skipped)",
    )
    merge_p.add_argument(
        "--out",
        dest="out_path",
        default=None,
        help="write the merged JSONL here (default: stdout)",
    )
    query_p = trace_sub.add_parser(
        "query",
        help="filter events with 'field OP value' clauses "
        "(e.g. 'type=gw.reception outcome=gateway_offline')",
    )
    query_p.add_argument("path")
    query_p.add_argument("expr", help="whitespace-separated filter clauses")
    query_p.add_argument("--limit", type=int, default=None)
    explain_p = trace_sub.add_parser(
        "explain",
        help="walk one packet's causal chain (NET:NODE:CTR[:ATT]) and "
        "highlight the outcome-deciding event",
    )
    explain_p.add_argument("path")
    explain_p.add_argument("packet", help="packet id NET:NODE:CTR[:ATT]")
    explain_p.add_argument(
        "--shard",
        default=None,
        help="disambiguate when the packet id recurs across shards",
    )
    explain_p.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="also write the machine-readable chain to this file",
    )

    regress_p = sub.add_parser(
        "regress",
        help="compare two run artifacts (trace/result/bench) for drift",
    )
    regress_p.add_argument("path_a")
    regress_p.add_argument("path_b")
    regress_p.add_argument(
        "--rel-tol",
        type=float,
        default=0.05,
        help="default relative tolerance (fraction, default 0.05)",
    )
    regress_p.add_argument(
        "--abs-tol",
        type=float,
        default=1e-9,
        help="default absolute tolerance",
    )
    regress_p.add_argument(
        "--tol",
        action="append",
        default=[],
        metavar="METRIC=REL",
        help="per-metric relative tolerance override (repeatable)",
    )
    regress_p.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="write the machine-readable report to this file",
    )

    watch_p = sub.add_parser(
        "watch", help="live ASCII health dashboard (endpoint or trace tail)"
    )
    watch_src = watch_p.add_mutually_exclusive_group(required=True)
    watch_src.add_argument(
        "--url", default=None, help="base URL of a health HTTP exporter"
    )
    watch_src.add_argument(
        "--trace",
        dest="trace_path",
        default=None,
        help="tail a (growing) trace JSONL file instead of an endpoint",
    )
    watch_src.add_argument(
        "--campaign",
        dest="campaign_dir",
        default=None,
        help="show a running campaign's fleet telemetry (heartbeats)",
    )
    watch_p.add_argument(
        "--interval",
        dest="interval_s",
        type=float,
        default=1.0,
        help="refresh period in seconds",
    )
    watch_p.add_argument(
        "--frames",
        type=int,
        default=None,
        help="stop after N refreshes (default: until interrupted)",
    )
    watch_p.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (same as --frames 1)",
    )

    campaign_p = sub.add_parser(
        "campaign",
        help="compile a scenario spec and run/inspect its sweep campaign",
    )
    campaign_sub = campaign_p.add_subparsers(dest="campaign_command", required=True)
    crun_p = campaign_sub.add_parser(
        "run", help="execute every pending run of a scenario spec"
    )
    crun_p.add_argument("spec", help="scenario spec file (.yaml or .json)")
    crun_p.add_argument(
        "--out",
        dest="out_dir",
        default=None,
        help="campaign directory (default campaigns/<spec name>)",
    )
    crun_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel worker processes (default 1; results identical)",
    )
    crun_p.add_argument(
        "--no-resume",
        action="store_true",
        help="re-execute runs even when their results already exist",
    )
    crun_p.add_argument(
        "--trace",
        action="store_true",
        help="record per-run causal trace shards under <out>/traces/",
    )
    crun_p.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="write the run summary to this file instead of stdout",
    )
    cstat_p = campaign_sub.add_parser(
        "status", help="grid completion of a campaign directory"
    )
    cstat_p.add_argument("dir")
    cstat_p.add_argument(
        "--live",
        action="store_true",
        help="fleet view: per-worker heartbeats, throughput and ETA",
    )
    cstat_p.add_argument("--json", dest="json_path", default=None)
    crep_p = campaign_sub.add_parser(
        "report", help="per-run rows + aggregates over finished runs"
    )
    crep_p.add_argument("dir")
    crep_p.add_argument("--json", dest="json_path", default=None)
    cdiff_p = campaign_sub.add_parser(
        "diff", help="regression-check one campaign against another"
    )
    cdiff_p.add_argument("dir_a")
    cdiff_p.add_argument("dir_b")
    cdiff_p.add_argument(
        "--rel-tol",
        type=float,
        default=0.05,
        help="default relative tolerance (fraction, default 0.05)",
    )
    cdiff_p.add_argument(
        "--abs-tol", type=float, default=1e-9, help="default absolute tolerance"
    )
    cdiff_p.add_argument("--json", dest="json_path", default=None)

    drill_p = sub.add_parser(
        "drill",
        help="failover drill: crash + recover the Master, assert safety",
    )
    drill_p.add_argument("--seed", type=int, default=0)
    drill_p.add_argument(
        "--operators", type=int, default=6, help="fleet size (default 6)"
    )
    drill_p.add_argument(
        "--crash-at",
        dest="crash_at",
        type=int,
        default=4,
        help="request number the Master dies on (applied, unreplied)",
    )
    drill_p.add_argument(
        "--snapshot-after",
        dest="snapshot_after",
        type=int,
        default=2,
        help="snapshot after this many registers (0 = journal-only)",
    )
    drill_p.add_argument(
        "--max-recovery-s",
        dest="max_recovery_s",
        type=float,
        default=None,
        help="fail the drill if recovery exceeds this wall-clock budget",
    )
    drill_p.add_argument(
        "--out-dir",
        dest="out_dir",
        default="drill-artifacts",
        help="scratch directory for the journal and snapshot",
    )
    drill_p.add_argument(
        "--trace",
        dest="trace_path",
        default=None,
        help="write the drill's JSONL event trace here",
    )
    drill_p.add_argument(
        "--metrics",
        dest="metrics_path",
        default=None,
        help="write a Prometheus-text metrics snapshot here",
    )
    drill_p.add_argument(
        "--bench",
        dest="bench_path",
        default=None,
        help="append a BENCH-trajectory record to this JSON file",
    )
    drill_p.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="write the drill report to this file instead of stdout",
    )

    profile_p = sub.add_parser(
        "profile",
        help="run one scenario run under the performance observatory",
    )
    profile_p.add_argument("spec", help="scenario spec file (.yaml or .json)")
    profile_p.add_argument(
        "--run-index",
        dest="run_index",
        type=int,
        default=0,
        help="which grid run to profile (default 0)",
    )
    profile_p.add_argument(
        "--sample-every",
        dest="sample_every",
        type=int,
        default=1,
        help="time 1-in-N phase calls (default 1 = every call)",
    )
    profile_p.add_argument(
        "--top",
        type=int,
        default=15,
        help="hotspot rows to keep (default 15)",
    )
    profile_p.add_argument(
        "--no-cprofile",
        action="store_true",
        help="skip the cProfile hotspot pass (lower overhead)",
    )
    profile_p.add_argument(
        "--no-flame",
        action="store_true",
        help="skip span aggregation (no flame view)",
    )
    profile_p.add_argument(
        "--no-warmup",
        action="store_true",
        help="profile the cold first run (imports and caches included)",
    )
    profile_p.add_argument(
        "--memory",
        action="store_true",
        help="track the tracemalloc memory high-water mark",
    )
    profile_p.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="write the raw report as JSON ('-' for stdout)",
    )

    lint_p = sub.add_parser(
        "lint", help="run the determinism & invariant linter"
    )
    add_lint_arguments(lint_p)

    args = parser.parse_args(argv)
    setup_logging(-1 if args.quiet else args.verbose)

    if args.command == "list":
        width = max(len(n) for n in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            print(f"{name:<{width}}  {EXPERIMENTS[name][1]}")
        return 0

    if args.command == "run":
        fast = not args.full
        result, manifest = _run_observed(args, fast)
        if isinstance(result, dict):
            result = dict(result)
            result["manifest"] = manifest
        payload = json.dumps(result, indent=2, default=str)
        if args.json_path:
            with open(args.json_path, "w") as fh:
                fh.write(payload + "\n")
            print(f"wrote {args.json_path}")
        else:
            print(payload)
        return 0

    if args.command == "render":
        result = _call_driver(args.name, args.seed, True)
        print(_render(args.name, result))
        return 0

    if args.command == "trace":
        return _trace_command(args)

    if args.command == "regress":
        return _regress_command(args)

    if args.command == "watch":
        return run_watch(
            url=args.url,
            trace_path=args.trace_path,
            campaign_dir=args.campaign_dir,
            interval_s=args.interval_s,
            frames=1 if args.once else args.frames,
        )

    if args.command == "profile":
        return _profile_command(args)

    if args.command == "campaign":
        return _campaign_command(args)

    if args.command == "drill":
        return _drill_command(args)

    if args.command == "lint":
        return run_lint(args)

    return 2


if __name__ == "__main__":
    sys.exit(main())
