"""Dependency-free ASCII charts for experiment series.

Benchmarks and the CLI render reproduced figures as terminal plots —
no matplotlib required (the reference environment is offline).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

__all__ = ["bar_chart", "line_chart"]

_MARKS = "ox+*#@%&"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return "(no data)"
    top = max(max(values), 1e-12)
    label_w = max(len(str(l)) for l in labels)
    rows = []
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(value / top * width)), 0)
        rows.append(f"{str(label):>{label_w}} | {bar} {value:g}{unit}")
    return "\n".join(rows)


def line_chart(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    title: str = "",
) -> str:
    """Multi-series scatter/line chart on a character grid."""
    if not series:
        return "(no data)"
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} does not align with xs")
    all_y = [y for ys in series.values() for y in ys]
    y_min = min(min(all_y), 0.0)
    y_max = max(max(all_y), y_min + 1e-12)
    x_min, x_max = min(xs), max(xs)
    x_span = max(x_max - x_min, 1e-12)
    y_span = y_max - y_min

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, ys) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in zip(xs, ys):
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:10.6g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:10.6g} +" + "-" * width)
    lines.append(
        " " * 12 + f"{x_min:<10.6g}" + " " * max(width - 20, 1) + f"{x_max:>10.6g}"
    )
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
