"""API-reference generator: walk the package, emit Markdown.

Produces ``docs/API.md`` from the live package — every public module,
class, and function with its signature and docstring summary — so the
reference can never drift from the code.  Run with::

    python -m repro.tools.apidoc [output-path]
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from typing import List, Optional

__all__ = ["generate_api_docs", "PACKAGES"]

PACKAGES = [
    "repro.phy",
    "repro.gateway",
    "repro.node",
    "repro.sim",
    "repro.faults",
    "repro.netserver",
    "repro.lorawan",
    "repro.baselines",
    "repro.core",
    "repro.analysis",
    "repro.experiments",
    "repro.scenarios",
    "repro.campaign",
    "repro.obs",
    "repro.tools",
]


def _summary(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    first = doc.strip().splitlines()[0] if doc.strip() else ""
    return first


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _document_module(module) -> List[str]:
    lines: List[str] = []
    lines.append(f"### `{module.__name__}`")
    lines.append("")
    summary = _summary(module)
    if summary:
        lines.append(summary)
        lines.append("")
    public = getattr(module, "__all__", None)
    if public is None:
        public = [n for n in vars(module) if not n.startswith("_")]
    for name in public:
        obj = getattr(module, name, None)
        if obj is None:
            continue
        if inspect.getmodule(obj) is not None and (
            inspect.getmodule(obj).__name__ != module.__name__
        ):
            continue  # re-export: documented at its home module
        if inspect.isclass(obj):
            lines.append(f"* **class `{name}{_signature(obj)}`** — {_summary(obj)}")
            for mname, meth in inspect.getmembers(obj, inspect.isfunction):
                if mname.startswith("_"):
                    continue
                lines.append(
                    f"    * `.{mname}{_signature(meth)}` — {_summary(meth)}"
                )
        elif inspect.isfunction(obj):
            lines.append(f"* **`{name}{_signature(obj)}`** — {_summary(obj)}")
        elif not inspect.ismodule(obj):
            lines.append(f"* **`{name}`** — constant")
    lines.append("")
    return lines


def generate_api_docs(packages: Optional[List[str]] = None) -> str:
    """Render the Markdown API reference for the given packages."""
    out: List[str] = [
        "# API reference",
        "",
        "Generated from the live package by `python -m repro.tools.apidoc`.",
        "",
    ]
    for pkg_name in packages or PACKAGES:
        pkg = importlib.import_module(pkg_name)
        out.append(f"## `{pkg_name}`")
        out.append("")
        summary = _summary(pkg)
        if summary:
            out.append(summary)
            out.append("")
        module_names = [pkg_name]
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                if not info.name.startswith("_"):
                    module_names.append(f"{pkg_name}.{info.name}")
        for mod_name in module_names[1:]:
            module = importlib.import_module(mod_name)
            out.extend(_document_module(module))
    return "\n".join(out) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: write the reference to the given path."""
    args = list(sys.argv[1:] if argv is None else argv)
    path = args[0] if args else "docs/API.md"
    import os

    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        fh.write(generate_api_docs())
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
