"""Live ASCII health dashboard (``repro.tools watch``).

Renders refreshing per-gateway health — score bars, streaming samples,
and active alerts — from either source the observatory exposes:

* a live :class:`~repro.obs.httpexport.HealthHTTPExporter` endpoint
  (``--url http://127.0.0.1:8000``), or
* a growing trace JSONL file (``--trace chaos.jsonl``) that a traced run
  is appending to; events are tailed incrementally into a local
  :class:`~repro.obs.health.HealthMonitor`, or
* a campaign directory (``--campaign campaigns/fig02``) whose worker
  heartbeats (:func:`repro.campaign.fleet_status`) drive a fleet
  progress view — per-worker throughput, completion bar and ETA.

The renderers are pure (dict in, string out) so tests drive them
without a terminal, and the tail-follower is incremental so watching a
multi-megabyte trace stays O(new events) per frame.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Mapping, Optional, Sequence, TextIO

from ..obs.events import EventType
from ..obs.health import HealthMonitor
from .ascii_chart import bar_chart

__all__ = [
    "TraceFollower",
    "fetch_healthz",
    "render_dashboard",
    "render_fleet",
    "watch",
]

_STATUS_MARKS = {"healthy": "+", "degraded": "~", "critical": "!"}


class TraceFollower:
    """Incrementally tails a trace JSONL file into a health monitor."""

    def __init__(self, path: str, monitor: Optional[HealthMonitor] = None) -> None:
        self.path = path
        self.monitor = monitor if monitor is not None else HealthMonitor()
        self._offset = 0
        self._partial = ""

    def poll(self) -> int:
        """Feed newly appended complete lines; returns events ingested."""
        try:
            with open(self.path, "r") as fh:
                fh.seek(self._offset)
                chunk = fh.read()
                self._offset = fh.tell()
        except OSError:
            return 0
        if not chunk:
            return 0
        text = self._partial + chunk
        lines = text.split("\n")
        # The last element is a partial line unless the chunk ended in \n.
        self._partial = lines.pop()
        ingested = 0
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write: skip, the next line resyncs
            etype = ev.get("type")
            if not isinstance(etype, str) or etype == EventType.MANIFEST:
                continue
            t = ev.get("t")
            fields = {
                k: v for k, v in ev.items() if k not in ("seq", "type", "t")
            }
            self.monitor.observe_event(
                etype, t if isinstance(t, (int, float)) else None, fields
            )
            ingested += 1
        if ingested:
            self.monitor.evaluate()
        return ingested

    def healthz(self) -> Dict[str, Any]:
        """Current health summary of everything tailed so far."""
        return self.monitor.healthz()

    def alerts(self) -> List[Dict[str, Any]]:
        """Fired alerts reconstructed from the tailed events."""
        return self.monitor.alerts()


def _read_json(url: str, timeout_s: float) -> Dict[str, Any]:
    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as resp:
            return json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        # /healthz answers 503 with a full JSON body once degraded.
        body = exc.read().decode()
        return json.loads(body)


def fetch_healthz(base_url: str, timeout_s: float = 2.0) -> Dict[str, Any]:
    """``/healthz`` payload from a live exporter (503 bodies included)."""
    return _read_json(base_url.rstrip("/") + "/healthz", timeout_s)


def fetch_alerts(base_url: str, timeout_s: float = 2.0) -> List[Dict[str, Any]]:
    """``/alerts`` payload from a live exporter."""
    payload = _read_json(base_url.rstrip("/") + "/alerts", timeout_s)
    alerts = payload.get("alerts", [])
    return alerts if isinstance(alerts, list) else []


def render_dashboard(
    healthz: Mapping[str, Any],
    alerts: Sequence[Mapping[str, Any]] = (),
    source: str = "",
) -> str:
    """Render one dashboard frame from a ``/healthz`` payload."""
    lines: List[str] = []
    status = str(healthz.get("status", "?"))
    sim_t = healthz.get("sim_time_s", 0.0)
    header = f"health: {status.upper()}  sim t={sim_t:.1f}s"
    if source:
        header += f"  [{source}]"
    lines.append(header)
    lines.append("=" * len(header))

    gateways = healthz.get("gateways", {})
    if gateways:
        labels: List[str] = []
        scores: List[float] = []
        for name in sorted(gateways):
            snap = gateways[name]
            mark = _STATUS_MARKS.get(str(snap.get("status")), "?")
            labels.append(f"{mark} {name}")
            scores.append(float(snap.get("score", 0.0)))
        lines.append(bar_chart(labels, scores, width=40))
        lines.append("")
        head = (
            f"{'gw':>6} {'status':>9} {'occ':>6} {'cont':>6} "
            f"{'drop':>6} {'rtt_ms':>7} {'pool':>5} {'reboots':>8}"
        )
        lines.append(head)
        lines.append("-" * len(head))
        for name in sorted(gateways):
            snap = gateways[name]
            sample = snap.get("sample", {})
            lines.append(
                f"{name:>6} {str(snap.get('status')):>9} "
                f"{sample.get('decoder_occupancy', 0.0):>6.2f} "
                f"{sample.get('contention_rate', 0.0):>6.2f} "
                f"{sample.get('drop_ratio', 0.0):>6.2f} "
                f"{sample.get('backhaul_rtt_s', 0.0) * 1e3:>7.1f} "
                f"{snap.get('pool_size', 0):>5} "
                f"{snap.get('reboots', 0):>8}"
            )
    else:
        lines.append("(no gateway data yet)")

    active = [a for a in alerts if a.get("active")]
    lines.append("")
    lines.append(f"alerts: {len(active)} active / {len(alerts)} fired")
    for alert in active:
        where = (
            f"gw{alert['gateway']}" if alert.get("gateway") is not None else "global"
        )
        lines.append(
            f"  ! [{alert.get('severity')}] {alert.get('rule')} @ {where} "
            f"(value={alert.get('value', 0.0):.3g}, "
            f"since t={alert.get('fired_s', 0.0):.1f}s)"
        )
    return "\n".join(lines)


def _fmt_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "?"
    if eta_s >= 90:
        return f"{eta_s / 60:.1f}min"
    return f"{eta_s:.0f}s"


def render_fleet(status: Mapping[str, Any], width: int = 30) -> str:
    """Render one fleet frame from a ``fleet_status`` payload.

    Pure (dict in, string out): ``campaign status --live`` and
    ``watch --campaign`` both print exactly this.
    """
    lines: List[str] = []
    total = int(status.get("total") or 0)
    completed = int(status.get("completed") or 0)
    pending = int(status.get("pending") or 0)
    header = (
        f"campaign {status.get('name', '?')}: "
        f"{completed}/{total} done, {pending} pending"
    )
    lines.append(header)
    lines.append("=" * len(header))
    share = completed / total if total else 0.0
    filled = int(round(share * width))
    lines.append(f"[{'#' * filled}{'-' * (width - filled)}] {share:.0%}")

    workers = status.get("workers") or []
    lines.append("")
    if workers:
        head = (
            f"{'worker':<10} {'runs':>5} {'last run':<22} "
            f"{'last_s':>7} {'ev/s':>9} {'age':>6}"
        )
        lines.append(head)
        lines.append("-" * len(head))
        for w in workers:
            mark = "~" if w.get("stale") else "+"
            last_s = w.get("last_wall_s")
            eps = w.get("last_eps")
            lines.append(
                f"{mark}{str(w.get('worker', '?')):<9} "
                f"{w.get('runs_done', 0):>5} "
                f"{str(w.get('last_run_id') or '-'):<22} "
                f"{(f'{last_s:.2f}' if last_s is not None else '-'):>7} "
                f"{(f'{eps:,.0f}' if eps is not None else '-'):>9} "
                f"{w.get('age_s', 0.0):>5.0f}s"
            )
    else:
        lines.append("(no worker heartbeats; campaign idle or finished)")

    fleet = status.get("fleet") or {}
    mean_s = fleet.get("mean_run_wall_s")
    lines.append("")
    lines.append(
        f"fleet: {fleet.get('active', 0)}/{fleet.get('workers', 0)} "
        f"workers active, "
        f"{(f'{mean_s:.2f}' if mean_s is not None else '?')} s/run mean, "
        f"ETA {_fmt_eta(fleet.get('eta_s'))}"
    )
    return "\n".join(lines)


def watch(
    url: Optional[str] = None,
    trace_path: Optional[str] = None,
    campaign_dir: Optional[str] = None,
    interval_s: float = 1.0,
    frames: Optional[int] = None,
    out: Optional[TextIO] = None,
) -> int:
    """Render the dashboard repeatedly; returns a process exit code.

    Exactly one of ``url`` / ``trace_path`` / ``campaign_dir`` must be
    given.  ``frames`` bounds the number of refreshes (None = until
    interrupted); tests pass ``frames=1`` for a single snapshot.
    """
    sources = sum(x is not None for x in (url, trace_path, campaign_dir))
    if sources != 1:
        print(
            "watch: pass exactly one of --url / --trace / --campaign",
            file=sys.stderr,
        )
        return 2
    stream = out if out is not None else sys.stdout
    follower = TraceFollower(trace_path) if trace_path is not None else None
    rendered = 0
    try:
        while frames is None or rendered < frames:
            if campaign_dir is not None:
                from ..campaign import CampaignError, fleet_status

                try:
                    frame = render_fleet(fleet_status(campaign_dir))
                except (OSError, CampaignError) as exc:
                    print(f"watch: {campaign_dir}: {exc}", file=sys.stderr)
                    return 1
            elif follower is not None:
                follower.poll()
                healthz = follower.healthz()
                alerts = follower.alerts()
                frame = render_dashboard(healthz, alerts, source=follower.path)
            else:
                assert url is not None
                try:
                    healthz = fetch_healthz(url)
                    alerts = fetch_alerts(url)
                except (OSError, ValueError) as exc:
                    print(f"watch: {url}: {exc}", file=sys.stderr)
                    return 1
                frame = render_dashboard(healthz, alerts, source=url)
            if rendered:
                print("", file=stream)
            print(frame, file=stream)
            rendered += 1
            if frames is None or rendered < frames:
                time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0
