"""CLI tools: run and render the paper reproductions."""

from __future__ import annotations

from .ascii_chart import bar_chart, line_chart
from .cli import EXPERIMENTS, main

__all__ = ["bar_chart", "line_chart", "EXPERIMENTS", "main"]
