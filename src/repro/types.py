"""Shared core types: transmissions and per-gateway observations.

These types sit below every other package: nodes emit
:class:`Transmission` objects, the simulation medium turns them into
per-gateway :class:`Observation` objects (attaching link RSSI/SNR), and
the gateway pipeline consumes observations to produce receptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .phy.channels import Channel
from .phy.lora import (
    LoRaParams,
    SpreadingFactor,
    preamble_duration_s,
    time_on_air_s,
)

__all__ = ["Transmission", "Observation", "time_overlap_s"]


@dataclass(frozen=True)
class Transmission:
    """One uplink packet on the air.

    Attributes:
        node_id: Identifier of the transmitting end node.
        network_id: Operator/network the node belongs to (the LoRaWAN
            sync word distinguishes networks but is only readable *after*
            decoding — the root of inter-network decoder contention).
        channel: Transmit channel.
        sf: Spreading factor.
        start_s: Transmission start time (leading preamble symbol).
        payload_bytes: MAC payload length.
        tx_power_dbm: Transmit power.
        counter: Uplink frame counter (for dedup at the network server).
        confirmed: Whether the uplink requests an acknowledgement (and
            so is retransmitted when none arrives).
        attempt: Retransmission index — 0 for the original send, 1+ for
            re-sends of the same frame counter.
    """

    node_id: int
    network_id: int
    channel: Channel
    sf: SpreadingFactor
    start_s: float
    payload_bytes: int = 10
    tx_power_dbm: float = 14.0
    counter: int = 0
    confirmed: bool = False
    attempt: int = 0

    @property
    def params(self) -> LoRaParams:
        """The PHY parameter set of this transmission."""
        return LoRaParams(sf=self.sf, bandwidth_hz=int(self.channel.bandwidth_hz))

    @property
    def airtime_s(self) -> float:
        """Total time-on-air of the packet."""
        return time_on_air_s(
            self.payload_bytes, self.sf, int(self.channel.bandwidth_hz)
        )

    @property
    def preamble_s(self) -> float:
        """Preamble duration; the decoder locks on at its end."""
        return preamble_duration_s(self.sf, int(self.channel.bandwidth_hz))

    @property
    def lock_on_s(self) -> float:
        """The instant a gateway channel locks onto this packet (FCFS key)."""
        return self.start_s + self.preamble_s

    @property
    def end_s(self) -> float:
        """Transmission end time."""
        return self.start_s + self.airtime_s

    def key(self) -> tuple:
        """Dedup key used by the network server."""
        return (self.network_id, self.node_id, self.counter)


@dataclass(frozen=True)
class Observation:
    """A transmission as seen at one gateway's antenna port.

    The medium (or a test) computes ``rssi_dbm`` from the link budget;
    the gateway pipeline handles everything downstream of the antenna.
    """

    transmission: Transmission
    rssi_dbm: float

    @property
    def tx(self) -> Transmission:
        """Shorthand for the underlying transmission."""
        return self.transmission


def time_overlap_s(a: Transmission, b: Transmission) -> float:
    """Length of the time interval during which two packets are both on air."""
    return max(0.0, min(a.end_s, b.end_s) - max(a.start_s, b.start_s))
