"""Finding baselines: grandfather known findings without hiding new ones.

A baseline is a JSON file of finding fingerprints
(:meth:`repro.lint.findings.Finding.fingerprint`).  Applying it removes
exactly the grandfathered findings from a report and surfaces *stale*
entries — fingerprints whose finding no longer occurs — so the file
shrinks monotonically as debt is paid down.  The shipped repo baseline
(``lint-baseline.json``) is empty: the tree lints clean, and the gate
test keeps it that way.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .findings import Finding

__all__ = [
    "BASELINE_VERSION",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

BASELINE_VERSION = 1


def load_baseline(path: str) -> Set[str]:
    """Fingerprints grandfathered by the baseline file at ``path``.

    A missing file is an empty baseline; a malformed one raises
    ``ValueError`` so CI never silently ignores a corrupt baseline.
    """
    if not os.path.exists(path):
        return set()
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"{path}: not a lint baseline file")
    out: Set[str] = set()
    for entry in data["findings"]:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValueError(f"{path}: baseline entry without fingerprint")
        out.add(str(entry["fingerprint"]))
    return out


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count.

    Entries keep human-readable context (rule, path, message) next to
    the matching fingerprint so reviews of baseline changes are
    self-describing.
    """
    entries: List[Dict[str, object]] = []
    seen: Set[str] = set()
    for finding in sorted(findings):
        fp = finding.fingerprint()
        if fp in seen:
            continue
        seen.add(fp)
        entries.append(
            {
                "fingerprint": fp,
                "rule": finding.rule_id,
                "path": finding.path,
                "message": finding.message,
            }
        )
    payload = {"version": BASELINE_VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return len(entries)


def apply_baseline(
    findings: Sequence[Finding], baseline: Set[str]
) -> Tuple[List[Finding], int, Set[str]]:
    """Split findings against a baseline.

    Returns ``(new_findings, grandfathered_count, stale_fingerprints)``
    where stale fingerprints are baseline entries that matched nothing —
    debt that has been paid and should be dropped from the file.
    """
    fresh: List[Finding] = []
    matched: Set[str] = set()
    for finding in findings:
        fp = finding.fingerprint()
        if fp in baseline:
            matched.add(fp)
        else:
            fresh.append(finding)
    return fresh, len(findings) - len(fresh), baseline - matched
