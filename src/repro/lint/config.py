"""Linter configuration: the ``[tool.repro-lint]`` table in pyproject.

Rules never hard-code project paths; everything tree-specific — the
DET002 wall-clock telemetry allowlist, the DET010 pure roots, the
deep-pass analysis scope — lives in ``pyproject.toml`` and is parsed
into an immutable :class:`LintConfig`.  The compiled-in defaults equal
the shipped table, so ``lint_source`` (which never touches the
filesystem) behaves identically with or without a pyproject.

Parsing is zero-dependency: :mod:`tomllib` on Python 3.11+, with a
minimal TOML-subset fallback (one table of strings and string arrays)
for 3.9/3.10.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field, fields
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

__all__ = ["LintConfig", "DEFAULT_CONFIG", "load_config", "parse_config"]

# The pyproject table that configures the linter.
CONFIG_TABLE = "tool.repro-lint"


@dataclass(frozen=True)
class LintConfig:
    """Tree-specific linter knobs (see DESIGN.md section 9.2).

    Attributes:
        wall_clock_modules: Repo-relative module paths that *are* the
            telemetry layer — DET002 exempts them wholesale, and the
            DET010 purity traversal treats them as boundaries (their
            wall-clock reads land only in ``*_wall_s`` fields).
        wall_clock_sites: ``path::function`` telemetry sites allowed to
            read the wall clock (DET002) and treated as purity
            boundaries (DET010).
        pure_roots: Dotted qualnames of the deterministic hot-path
            roots: DET010 reports any call path from one of these that
            reaches wall-clock, unseeded RNG, filesystem, or env
            access, and PERF001/PERF002 lint loops only inside
            functions reachable from them.
    """

    wall_clock_modules: Tuple[str, ...] = (
        "src/repro/obs/profiling.py",
        "src/repro/obs/manifest.py",
        "src/repro/obs/perf.py",
    )
    wall_clock_sites: Tuple[Tuple[str, str], ...] = (
        ("src/repro/core/master_client.py", "_roundtrip_once"),
        ("src/repro/core/master_client.py", "_roundtrip"),
        ("src/repro/core/evolutionary.py", "evolve"),
        ("src/repro/core/intra_planner.py", "plan"),
        ("src/repro/core/upgrade.py", "run_capacity_upgrade"),
    )
    pure_roots: Tuple[str, ...] = (
        "repro.sim.engine.OnlineSimulator.run_online",
        "repro.sim.engine.OnlineSimulator._run_gateway",
        "repro.gateway.gateway.Gateway.receive",
        "repro.phy.interference.decode_ok",
    )

    @property
    def wall_clock_site_set(self) -> FrozenSet[Tuple[str, str]]:
        """The allowlist as a set for O(1) membership tests."""
        return frozenset(self.wall_clock_sites)

    @property
    def wall_clock_module_set(self) -> FrozenSet[str]:
        return frozenset(self.wall_clock_modules)


DEFAULT_CONFIG = LintConfig()

# TOML key (kebab-case) -> LintConfig field.
_KEY_OF_FIELD = {
    "wall_clock_modules": "wall-clock-modules",
    "wall_clock_sites": "wall-clock-sites",
    "pure_roots": "pure-roots",
}


def parse_config(table: Dict[str, Any], source: str = "<config>") -> LintConfig:
    """Build a :class:`LintConfig` from a raw ``[tool.repro-lint]`` table.

    Unknown keys raise ``ValueError`` (a typo must not silently fall
    back to defaults); missing keys keep their compiled-in default.
    """
    known = {toml_key: f for f, toml_key in _KEY_OF_FIELD.items()}
    unknown = sorted(set(table) - set(known))
    if unknown:
        raise ValueError(
            f"{source}: unknown [{CONFIG_TABLE}] key(s): {', '.join(unknown)}"
            f" (known: {', '.join(sorted(known))})"
        )
    kwargs: Dict[str, Any] = {}
    for toml_key, field_name in known.items():
        if toml_key not in table:
            continue
        raw = table[toml_key]
        if not isinstance(raw, list) or not all(
            isinstance(item, str) for item in raw
        ):
            raise ValueError(
                f"{source}: [{CONFIG_TABLE}] {toml_key} must be an array "
                "of strings"
            )
        if field_name == "wall_clock_sites":
            sites: List[Tuple[str, str]] = []
            for item in raw:
                path, sep, func = item.partition("::")
                if not sep or not path or not func:
                    raise ValueError(
                        f"{source}: [{CONFIG_TABLE}] wall-clock-sites entry "
                        f"{item!r} must look like 'path/to/mod.py::function'"
                    )
                sites.append((path, func))
            kwargs[field_name] = tuple(sites)
        else:
            kwargs[field_name] = tuple(raw)
    return LintConfig(**kwargs)


def load_config(root: Optional[str] = None) -> LintConfig:
    """Load the config for the tree at ``root`` (default: cwd).

    A missing ``pyproject.toml`` or a pyproject without a
    ``[tool.repro-lint]`` table yields :data:`DEFAULT_CONFIG`; a
    malformed table raises ``ValueError`` so CI never silently lints
    with the wrong allowlist.
    """
    base = os.path.abspath(root or os.getcwd())
    path = os.path.join(base, "pyproject.toml")
    if not os.path.isfile(path):
        return DEFAULT_CONFIG
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    table = _read_table(text, path)
    if table is None:
        return DEFAULT_CONFIG
    return parse_config(table, source=path)


# ---------------------------------------------------------------------------
# TOML reading: stdlib tomllib when present, a narrow fallback otherwise.


def _read_table(text: str, path: str) -> Optional[Dict[str, Any]]:
    """The raw ``[tool.repro-lint]`` table of a pyproject, or None."""
    try:
        import tomllib  # Python 3.11+
    except ImportError:
        return _read_table_fallback(text, path)
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ValueError(f"{path}: {exc}") from exc
    table: Any = data
    for part in ("tool", "repro-lint"):
        if not isinstance(table, dict) or part not in table:
            return None
        table = table[part]
    return table if isinstance(table, dict) else None


_HEADER_RE = re.compile(r"^\s*\[([^\]]+)\]\s*(?:#.*)?$")
_KEY_RE = re.compile(r"^\s*([A-Za-z0-9_-]+)\s*=\s*(.*)$")


def _read_table_fallback(text: str, path: str) -> Optional[Dict[str, Any]]:
    """Minimal TOML-subset reader for Python < 3.11.

    Supports exactly what the ``[tool.repro-lint]`` table uses: bare
    keys bound to basic strings or (possibly multi-line) arrays of
    basic strings, with ``#`` comments on their own lines.  Anything
    beyond that inside the table raises ``ValueError``.
    """
    lines = text.splitlines()
    table: Dict[str, Any] = {}
    inside = False
    found = False
    i = 0
    while i < len(lines):
        line = lines[i]
        header = _HEADER_RE.match(line)
        if header is not None:
            inside = header.group(1).strip() == "tool.repro-lint"
            found = found or inside
            i += 1
            continue
        if not inside or not line.strip() or line.lstrip().startswith("#"):
            i += 1
            continue
        key_match = _KEY_RE.match(line)
        if key_match is None:
            raise ValueError(
                f"{path}: unsupported [{CONFIG_TABLE}] syntax: {line!r}"
            )
        key, value = key_match.group(1), key_match.group(2)
        # Accumulate lines until the array literal balances.
        while value.count("[") > value.count("]"):
            i += 1
            if i >= len(lines):
                raise ValueError(
                    f"{path}: unterminated array for [{CONFIG_TABLE}] {key}"
                )
            value += "\n" + lines[i]
        table[key] = _parse_value(value, key, path)
        i += 1
    return table if found else None


def _parse_value(value: str, key: str, path: str) -> Any:
    # Strip full-line comments inside arrays (never inside strings:
    # basic TOML strings here contain no '#' — enforced by literal_eval
    # failing otherwise).
    cleaned = "\n".join(
        part for part in value.splitlines() if not part.lstrip().startswith("#")
    ).strip()
    try:
        parsed = ast.literal_eval(cleaned)
    except (ValueError, SyntaxError) as exc:
        raise ValueError(
            f"{path}: could not parse [{CONFIG_TABLE}] {key} = {value!r} "
            "(fallback parser supports strings and string arrays only)"
        ) from exc
    if isinstance(parsed, tuple):
        parsed = list(parsed)
    return parsed
