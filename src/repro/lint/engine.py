"""Rule engine for the determinism & invariant linter.

Zero-dependency AST analysis: each rule is a function registered under a
stable rule id via :func:`rule`; :func:`lint_paths` walks ``.py`` files,
parses each once, hands every registered rule a shared
:class:`LintContext`, and filters the raw findings through inline
``# repro: noqa[RULE-ID]`` suppressions.

Scoping: a rule declares which repo-relative path prefixes it applies to
(most invariant rules only bind inside ``src/repro`` — tests may pin
seeds or compare floats deliberately).  Files under a ``fixtures``
directory inside ``tests/lint`` are always skipped: they hold the
deliberate violations that the rule tests assert against.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .config import DEFAULT_CONFIG, LintConfig, load_config
from .findings import Finding

__all__ = [
    "LintContext",
    "LintReport",
    "Rule",
    "RULES",
    "rule",
    "lint_source",
    "lint_paths",
    "iter_python_files",
    "is_suppressed",
    "SRC_SCOPE",
    "ALL_SCOPE",
]

# Path-prefix scopes (repo-relative, POSIX separators).
SRC_SCOPE: Tuple[str, ...] = ("src/repro",)
ALL_SCOPE: Tuple[str, ...] = ("",)

# Directories never linted: deliberate-violation fixtures and caches.
_SKIPPED_DIR_NAMES = {"__pycache__", ".git", ".hypothesis", "build", "dist"}
_FIXTURE_MARKER = ("tests", "lint", "fixtures")

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)\]")

RuleFn = Callable[["LintContext"], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    rule_id: str
    summary: str
    scope: Tuple[str, ...]
    fn: RuleFn

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule binds for a repo-relative file path."""
        return any(relpath.startswith(prefix) for prefix in self.scope)


# rule id -> Rule, in registration order.
RULES: Dict[str, Rule] = {}


def rule(
    rule_id: str, summary: str, scope: Sequence[str] = SRC_SCOPE
) -> Callable[[RuleFn], RuleFn]:
    """Register ``fn`` as the implementation of ``rule_id``."""

    def decorate(fn: RuleFn) -> RuleFn:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        RULES[rule_id] = Rule(
            rule_id=rule_id, summary=summary, scope=tuple(scope), fn=fn
        )
        return fn

    return decorate


@dataclass
class LintContext:
    """Everything a rule needs about one source file.

    Attributes:
        relpath: Repo-relative POSIX path of the file.
        source: Full file contents.
        tree: Parsed module AST.
        suppressions: line -> set of suppressed rule ids on that line.
        config: Tree-level linter configuration (DET002 allowlist etc.);
            defaults to the compiled-in :data:`~repro.lint.config.DEFAULT_CONFIG`.
    """

    relpath: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    config: LintConfig = DEFAULT_CONFIG

    def finding(
        self, node: ast.AST, rule_id: str, message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` (spanning its lines)."""
        line = getattr(node, "lineno", 1)
        return Finding(
            path=self.relpath,
            line=line,
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id,
            message=message,
            end_line=getattr(node, "end_lineno", None) or line,
        )


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    parse_errors: List[str] = field(default_factory=list)

    def extend(self, other: "LintReport") -> None:
        """Fold another report into this one."""
        self.findings.extend(other.findings)
        self.files_checked += other.files_checked
        self.suppressed += other.suppressed
        self.parse_errors.extend(other.parse_errors)


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Per-line ``# repro: noqa[RULE-ID,...]`` suppressions in ``source``.

    Comments are located with :mod:`tokenize` so ``#`` characters inside
    string literals can never register as suppressions.
    """
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if match is None:
                continue
            ids = {part.strip() for part in match.group(1).split(",")}
            out.setdefault(tok.start[0], set()).update(ids)
    except tokenize.TokenError:
        pass  # Unterminated constructs: the ast parse will report it.
    return out


def is_suppressed(
    finding: Finding, suppressions: Dict[int, Set[str]]
) -> bool:
    """Whether a per-line noqa map suppresses ``finding``.

    A ``# repro: noqa[ID]`` on *any* physical line of the offending
    statement counts, so multi-line calls can carry the comment on the
    closing-paren line as naturally as on the first.
    """
    for line in range(finding.line, finding.last_line + 1):
        if finding.rule_id in suppressions.get(line, ()):
            return True
    return False


def lint_source(
    relpath: str,
    source: str,
    rules: Optional[Sequence[Rule]] = None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Lint one in-memory file; the core primitive under :func:`lint_paths`."""
    report = LintReport(files_checked=1)
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        report.parse_errors.append(f"{relpath}: {exc.msg} (line {exc.lineno})")
        return report
    ctx = LintContext(
        relpath=relpath,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
        config=config if config is not None else DEFAULT_CONFIG,
    )
    selected = list(RULES.values()) if rules is None else list(rules)
    for rule_ in selected:
        if not rule_.applies_to(relpath):
            continue
        for finding in rule_.fn(ctx):
            if is_suppressed(finding, ctx.suppressions):
                report.suppressed += 1
                continue
            report.findings.append(finding)
    report.findings.sort()
    return report


def _is_fixture_path(parts: Tuple[str, ...]) -> bool:
    for i in range(len(parts) - len(_FIXTURE_MARKER) + 1):
        if parts[i : i + len(_FIXTURE_MARKER)] == _FIXTURE_MARKER:
            return True
    return False


def iter_python_files(
    paths: Sequence[str], root: Optional[str] = None
) -> Iterator[Tuple[str, str]]:
    """Yield ``(abspath, repo-relative posix path)`` for every lintable file.

    ``paths`` entries may be files or directories, absolute or relative
    to ``root`` (default: the current working directory).
    """
    base = os.path.abspath(root or os.getcwd())
    seen: Set[str] = set()
    for entry in paths:
        abs_entry = (
            entry if os.path.isabs(entry) else os.path.join(base, entry)
        )
        if os.path.isfile(abs_entry):
            candidates = [abs_entry]
        else:
            candidates = []
            for dirpath, dirnames, filenames in os.walk(abs_entry):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIPPED_DIR_NAMES
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        candidates.append(os.path.join(dirpath, name))
            candidates.sort()
        for abspath in candidates:
            relpath = os.path.relpath(abspath, base).replace(os.sep, "/")
            parts = tuple(relpath.split("/"))
            if _is_fixture_path(parts) or abspath in seen:
                continue
            seen.add(abspath)
            yield abspath, relpath


def lint_paths(
    paths: Sequence[str],
    root: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Lint every Python file reachable from ``paths``.

    Importing :mod:`repro.lint.rules` (done lazily here) populates the
    registry, so callers that only ever use :func:`lint_paths` need no
    explicit registration step.  When ``config`` is omitted, the
    ``[tool.repro-lint]`` table of ``<root>/pyproject.toml`` is loaded
    (compiled-in defaults when absent).
    """
    from . import rules as _rules  # noqa: F401  (registration side effect)

    if config is None:
        config = load_config(root)
    report = LintReport()
    for abspath, relpath in iter_python_files(paths, root=root):
        try:
            with open(abspath, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            report.parse_errors.append(f"{relpath}: {exc}")
            continue
        report.extend(lint_source(relpath, source, rules=rules, config=config))
    report.findings.sort()
    return report
