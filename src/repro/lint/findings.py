"""Finding and report types for the determinism & invariant linter.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.fingerprint` is the stable identity used by the baseline
mechanism (:mod:`repro.lint.baseline`): rule id, repo-relative path and
a short hash of the message — deliberately *excluding* the line number,
so unrelated edits above a grandfathered finding do not churn the
baseline file.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List

__all__ = ["Finding", "render_text", "render_json"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: Repo-relative POSIX path of the offending file.
        line: 1-based line of the violation.
        col: 0-based column of the violation.
        rule_id: Identifier of the rule that fired (e.g. ``DET001``).
        message: Human-readable description of the violation.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number free)."""
        digest = hashlib.blake2b(
            f"{self.rule_id}:{self.path}:{self.message}".encode("utf-8"),
            digest_size=6,
        ).hexdigest()
        return f"{self.rule_id}:{self.path}:{digest}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe plain-dict form, including the fingerprint."""
        out: Dict[str, object] = dict(asdict(self))
        out["fingerprint"] = self.fingerprint()
        return out


def render_text(findings: Iterable[Finding]) -> str:
    """``path:line:col: RULE message`` lines, one per finding."""
    lines: List[str] = []
    for f in sorted(findings):
        lines.append(f"{f.path}:{f.line}:{f.col}: {f.rule_id} {f.message}")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """A JSON document: finding objects plus a per-rule summary."""
    ordered = sorted(findings)
    by_rule: Dict[str, int] = {}
    for f in ordered:
        by_rule[f.rule_id] = by_rule.get(f.rule_id, 0) + 1
    return json.dumps(
        {
            "findings": [f.to_dict() for f in ordered],
            "total": len(ordered),
            "by_rule": dict(sorted(by_rule.items())),
        },
        indent=2,
    )
