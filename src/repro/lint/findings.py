"""Finding and report types for the determinism & invariant linter.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.fingerprint` is the stable identity used by the baseline
mechanism (:mod:`repro.lint.baseline`): rule id, repo-relative path and
a short hash of the message — deliberately *excluding* the line number,
so unrelated edits above a grandfathered finding do not churn the
baseline file.

Renderers cover every CLI ``--format``: plain text, JSON, GitHub
workflow commands (``::error file=...``, surfaced as PR annotations),
and SARIF 2.1.0 (uploaded by CI for code-scanning integration).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Mapping, Optional

__all__ = [
    "Finding",
    "render_text",
    "render_json",
    "render_github",
    "render_sarif",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: Repo-relative POSIX path of the offending file.
        line: 1-based line of the violation.
        col: 0-based column of the violation.
        rule_id: Identifier of the rule that fired (e.g. ``DET001``).
        message: Human-readable description of the violation.
        end_line: 1-based last line of the offending statement (0 means
            unknown — treated as ``line``).  A ``# repro: noqa[ID]``
            comment anywhere in ``line..end_line`` suppresses the
            finding, so multi-line statements can carry the comment on
            any of their physical lines.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    end_line: int = 0

    @property
    def last_line(self) -> int:
        """The final physical line of the finding (always >= line)."""
        return max(self.line, self.end_line)

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number free)."""
        digest = hashlib.blake2b(
            f"{self.rule_id}:{self.path}:{self.message}".encode("utf-8"),
            digest_size=6,
        ).hexdigest()
        return f"{self.rule_id}:{self.path}:{digest}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe plain-dict form, including the fingerprint."""
        out: Dict[str, object] = dict(asdict(self))
        out["fingerprint"] = self.fingerprint()
        return out


def render_text(findings: Iterable[Finding]) -> str:
    """``path:line:col: RULE message`` lines, one per finding."""
    lines: List[str] = []
    for f in sorted(findings):
        lines.append(f"{f.path}:{f.line}:{f.col}: {f.rule_id} {f.message}")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """A JSON document: finding objects plus a per-rule summary."""
    ordered = sorted(findings)
    by_rule: Dict[str, int] = {}
    for f in ordered:
        by_rule[f.rule_id] = by_rule.get(f.rule_id, 0) + 1
    return json.dumps(
        {
            "findings": [f.to_dict() for f in ordered],
            "total": len(ordered),
            "by_rule": dict(sorted(by_rule.items())),
        },
        indent=2,
    )


def _escape_workflow_value(value: str) -> str:
    """Escape a message for the data part of a workflow command."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _escape_workflow_property(value: str) -> str:
    """Escape a property value (file=, title=) of a workflow command."""
    return (
        _escape_workflow_value(value).replace(":", "%3A").replace(",", "%2C")
    )


def render_github(findings: Iterable[Finding]) -> str:
    """GitHub Actions workflow commands, one ``::error`` per finding.

    Emitted on a runner these become inline PR annotations; locally they
    are still readable one-line records.
    """
    lines: List[str] = []
    for f in sorted(findings):
        props = (
            f"file={_escape_workflow_property(f.path)}"
            f",line={f.line}"
            f",endLine={f.last_line}"
            f",col={f.col + 1}"
            f",title={_escape_workflow_property(f.rule_id)}"
        )
        lines.append(
            f"::error {props}::{_escape_workflow_value(f.message)}"
        )
    return "\n".join(lines)


def render_sarif(
    findings: Iterable[Finding],
    rule_descriptions: Optional[Mapping[str, str]] = None,
) -> str:
    """A minimal SARIF 2.1.0 log (one run, driver ``repro-lint``).

    ``rule_descriptions`` maps rule ids to their one-line summaries for
    the driver's rule metadata; rules absent from the mapping still get
    a bare descriptor so every result's ``ruleId`` resolves.
    """
    ordered = sorted(findings)
    descriptions = dict(rule_descriptions or {})
    rule_ids = sorted({f.rule_id for f in ordered} | set(descriptions))
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": descriptions.get(rule_id, rule_id)
            },
        }
        for rule_id in rule_ids
    ]
    results = [
        {
            "ruleId": f.rule_id,
            "ruleIndex": rule_index[f.rule_id],
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "ROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "endLine": f.last_line,
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {"reproLint/v1": f.fingerprint()},
        }
        for f in ordered
    ]
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro-lint"
                        ),
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "ROOT": {"uri": "file:///./"}
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
