"""``python -m repro.tools lint`` — the linter's command-line front end.

Exit codes: 0 clean (after baseline), 1 findings or stale baseline
entries, 2 parse/usage errors.  ``--format json`` emits a machine-
readable report (uploaded as a CI artifact); ``--format sarif`` emits a
SARIF 2.1.0 log for code-scanning upload; ``--format github`` emits
workflow-command annotations; ``--write-baseline`` regenerates the
grandfather file from the current findings.

``--deep`` additionally runs the whole-program passes (DET010 purity,
RACE001/002 lock discipline, PERF001/002 hot loops) over a project-wide
call graph.  ``--changed [REF]`` restricts *reported* files to those
touched vs a git ref (default HEAD) for fast local iteration — under
``--deep`` the call graph still spans every requested path, so
cross-module facts stay sound; when git is unavailable the flag
degrades to a full run.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from typing import List, Optional, Sequence, Set, TextIO

from .baseline import apply_baseline, load_baseline, write_baseline
from .deeprules import DEEP_RULES, run_deep
from .engine import RULES, LintReport, iter_python_files, lint_paths
from .findings import render_github, render_json, render_sarif, render_text

__all__ = ["add_lint_arguments", "run_lint", "changed_files"]

DEFAULT_PATHS = ("src", "tests")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint subcommand's arguments onto ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github", "sarif"),
        default="text",
        help="finding output format",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="also run the whole-program passes (call-graph purity, "
        "lock discipline, hot-loop hygiene)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="only report findings in files changed vs REF (default "
        "HEAD); falls back to a full run when git is unavailable",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="subtract grandfathered findings recorded in this file",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write the current findings as the new baseline and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rule ids and exit",
    )


def changed_files(
    ref: str = "HEAD", root: Optional[str] = None
) -> Optional[List[str]]:
    """Repo-relative paths changed vs ``ref`` plus untracked files.

    Returns None when git is unavailable or the ref does not resolve
    (callers fall back to a full run).
    """
    base = os.path.abspath(root or os.getcwd())

    def run(cmd: List[str]) -> Optional[List[str]]:
        try:
            proc = subprocess.run(
                cmd,
                cwd=base,
                capture_output=True,
                text=True,
                timeout=30,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        if proc.returncode != 0:
            return None
        return [line.strip() for line in proc.stdout.splitlines() if line.strip()]

    diffed = run(["git", "diff", "--name-only", ref, "--"])
    if diffed is None:
        return None
    untracked = run(["git", "ls-files", "--others", "--exclude-standard"])
    if untracked is None:
        untracked = []
    return sorted(set(diffed) | set(untracked))


def _rule_descriptions() -> dict:
    out = {rid: r.summary for rid, r in RULES.items()}
    out.update({rid: r.summary for rid, r in DEEP_RULES.items()})
    return out


def run_lint(
    args: argparse.Namespace, stdout: Optional[TextIO] = None
) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    out = stdout if stdout is not None else sys.stdout
    if args.list_rules:
        rows = sorted(RULES.items())
        deep_rows = sorted(DEEP_RULES.items())
        width = max(len(rid) for rid, _ in rows + deep_rows)
        for rid, rule_ in rows:
            print(f"{rid:<{width}}  {rule_.summary}", file=out)
        for rid, rule_ in deep_rows:
            print(f"{rid:<{width}}  {rule_.summary} [--deep]", file=out)
        return 0

    # --changed: restrict the *reported* file set.
    report_only: Optional[Set[str]] = None
    if args.changed is not None:
        changed = changed_files(args.changed)
        if changed is None:
            print(
                f"--changed {args.changed}: git unavailable or ref "
                "unresolvable; linting everything",
                file=sys.stderr,
            )
        else:
            candidates = {
                rel for _, rel in iter_python_files(args.paths)
            }
            report_only = candidates & set(changed)

    if report_only is not None:
        shallow_targets: Sequence[str] = sorted(report_only)
        report = (
            lint_paths(shallow_targets)
            if shallow_targets
            else LintReport()
        )
    else:
        report = lint_paths(args.paths)

    if args.deep:
        deep = run_deep(args.paths, report_only=report_only)
        report.findings.extend(deep.findings)
        report.suppressed += deep.suppressed
        report.parse_errors.extend(
            err for err in deep.parse_errors
            if err not in report.parse_errors
        )
        report.findings.sort()

    for error in report.parse_errors:
        print(f"parse error: {error}", file=sys.stderr)
    if args.write_baseline:
        count = write_baseline(args.write_baseline, report.findings)
        print(
            f"wrote {args.write_baseline} ({count} grandfathered findings)",
            file=sys.stderr,
        )
        return 0
    findings = report.findings
    stale: List[str] = []
    grandfathered = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"baseline error: {exc}", file=sys.stderr)
            return 2
        findings, grandfathered, stale_set = apply_baseline(
            findings, baseline
        )
        stale = sorted(stale_set)
    if args.format == "json":
        print(render_json(findings), file=out)
    elif args.format == "sarif":
        print(
            render_sarif(findings, rule_descriptions=_rule_descriptions()),
            file=out,
        )
    elif args.format == "github":
        rendered = render_github(findings)
        if rendered:
            print(rendered, file=out)
    elif findings:
        print(render_text(findings), file=out)
    for fp in stale:
        print(
            f"stale baseline entry (finding fixed — remove it): {fp}",
            file=sys.stderr,
        )
    summary = (
        f"{len(findings)} finding(s) in {report.files_checked} file(s)"
        f" [{report.suppressed} suppressed inline"
        + (f", {grandfathered} baselined" if args.baseline else "")
        + "]"
    )
    print(summary, file=sys.stderr)
    if report.parse_errors:
        return 2
    return 1 if findings or stale else 0
