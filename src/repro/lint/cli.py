"""``python -m repro.tools lint`` — the linter's command-line front end.

Exit codes: 0 clean (after baseline), 1 findings or stale baseline
entries, 2 parse/usage errors.  ``--format json`` emits a machine-
readable report (uploaded as a CI artifact); ``--write-baseline``
regenerates the grandfather file from the current findings.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, TextIO

from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import RULES, lint_paths
from .findings import render_json, render_text

__all__ = ["add_lint_arguments", "run_lint"]

DEFAULT_PATHS = ("src", "tests")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint subcommand's arguments onto ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="finding output format",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="subtract grandfathered findings recorded in this file",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write the current findings as the new baseline and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rule ids and exit",
    )


def run_lint(
    args: argparse.Namespace, stdout: Optional[TextIO] = None
) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    out = stdout if stdout is not None else sys.stdout
    if args.list_rules:
        width = max(len(rid) for rid in RULES)
        for rid, rule_ in sorted(RULES.items()):
            print(f"{rid:<{width}}  {rule_.summary}", file=out)
        return 0
    report = lint_paths(args.paths)
    for error in report.parse_errors:
        print(f"parse error: {error}", file=sys.stderr)
    if args.write_baseline:
        count = write_baseline(args.write_baseline, report.findings)
        print(
            f"wrote {args.write_baseline} ({count} grandfathered findings)",
            file=sys.stderr,
        )
        return 0
    findings = report.findings
    stale: List[str] = []
    grandfathered = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"baseline error: {exc}", file=sys.stderr)
            return 2
        findings, grandfathered, stale_set = apply_baseline(
            findings, baseline
        )
        stale = sorted(stale_set)
    if args.format == "json":
        print(render_json(findings), file=out)
    elif findings:
        print(render_text(findings), file=out)
    for fp in stale:
        print(
            f"stale baseline entry (finding fixed — remove it): {fp}",
            file=sys.stderr,
        )
    summary = (
        f"{len(findings)} finding(s) in {report.files_checked} file(s)"
        f" [{report.suppressed} suppressed inline"
        + (f", {grandfathered} baselined" if args.baseline else "")
        + "]"
    )
    print(summary, file=sys.stderr)
    if report.parse_errors:
        return 2
    return 1 if findings or stale else 0
