"""The determinism & invariant rule set (DET/OBS/API/UNIT families).

Each rule encodes one invariant the reproduction's byte-for-byte claims
rest on; DESIGN.md section 9 is the human-readable contract.  Rules are
pure functions from a :class:`~repro.lint.engine.LintContext` to
findings, registered by stable id so suppressions
(``# repro: noqa[RULE-ID]``) and baselines survive refactors.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import LintContext, rule
from .findings import Finding

__all__ = [
    "det001_seeded_rng",
    "det002_wall_clock",
    "det003_float_time_equality",
    "obs001_guarded_hooks",
    "obs002_metric_names",
    "api001_public_annotations",
    "unit001_quantity_suffix",
]

# ---------------------------------------------------------------------------
# shared AST helpers


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to canonical dotted module/object paths.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import perf_counter`` -> ``{"perf_counter": "time.perf_counter"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                aliases[item.asname or item.name] = (
                    f"{node.module}.{item.name}"
                )
    return aliases


def _canonical_name(
    node: ast.AST, aliases: Dict[str, str]
) -> Optional[str]:
    """Canonical dotted path of a Name/Attribute chain, or None."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    root = aliases.get(cur.id, cur.id)
    parts.append(root)
    return ".".join(reversed(parts))


def _enclosing_functions(
    tree: ast.Module,
) -> Dict[ast.AST, str]:
    """Map every AST node to the name of its innermost enclosing def."""
    owner: Dict[ast.AST, str] = {}

    def visit(node: ast.AST, current: str) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            current = node.name
        for child in ast.iter_child_nodes(node):
            owner[child] = current
            visit(child, current)

    visit(tree, "<module>")
    return owner


def _iter_defs(
    body: Sequence[ast.stmt],
) -> Iterator[Tuple[ast.AST, Optional[ast.ClassDef]]]:
    """Top-level functions/classes and methods: ``(def, owning class)``."""
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, None
        elif isinstance(node, ast.ClassDef):
            yield node, None
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield sub, node


def _is_dataclass(node: ast.ClassDef, aliases: Dict[str, str]) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = _canonical_name(target, aliases)
        if name in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


# ---------------------------------------------------------------------------
# DET001 — all randomness flows from an explicit, derived seed

_GLOBAL_STREAM_EXEMPT = {"Random", "SystemRandom"}
_NUMPY_SEEDED_FACTORIES = {
    "default_rng",
    "RandomState",
    "Generator",
    "SeedSequence",
}


def _seed_argument_ok(call: ast.Call) -> bool:
    """A seeded-RNG constructor must take a non-literal seed expression."""
    if not call.args and not call.keywords:
        return False  # unseeded: follows process entropy
    seed_expr: Optional[ast.expr] = call.args[0] if call.args else None
    if seed_expr is None:
        for kw in call.keywords:
            if kw.arg in (None, "seed", "x"):
                seed_expr = kw.value
                break
    if seed_expr is None:
        return False
    return not isinstance(seed_expr, ast.Constant)


@rule("DET001", "all RNG must derive from an explicit seed expression")
def det001_seeded_rng(ctx: LintContext) -> Iterable[Finding]:
    aliases = _import_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _canonical_name(node.func, aliases)
        if name is None:
            continue
        if name.startswith("random."):
            attr = name.split(".", 1)[1]
            if attr in _GLOBAL_STREAM_EXEMPT:
                if not _seed_argument_ok(node):
                    yield ctx.finding(
                        node,
                        "DET001",
                        f"random.{attr} needs a seed derived from the "
                        "scenario seed, not omitted or a hardcoded literal "
                        "(see faults.plan._stable_stream_seed)",
                    )
            elif "." not in attr:
                yield ctx.finding(
                    node,
                    "DET001",
                    f"call to process-global random.{attr}(); use an "
                    "explicitly seeded random.Random instance instead",
                )
        elif name.startswith("numpy.random."):
            attr = name.split("numpy.random.", 1)[1]
            if attr in _NUMPY_SEEDED_FACTORIES:
                if not _seed_argument_ok(node):
                    yield ctx.finding(
                        node,
                        "DET001",
                        f"numpy.random.{attr} needs a non-literal seed "
                        "derived from the scenario seed",
                    )
            else:
                yield ctx.finding(
                    node,
                    "DET001",
                    f"call to process-global numpy.random.{attr}(); use "
                    "numpy.random.default_rng(seed) instead",
                )


# ---------------------------------------------------------------------------
# DET002 — wall clock only at telemetry sites feeding *_wall_s/*_rtt_s

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

# The telemetry allowlist itself — which modules *are* the telemetry
# layer, and which (module path, enclosing def) pairs may read the wall
# clock — lives in the ``[tool.repro-lint]`` table of pyproject.toml
# (``wall-clock-modules`` / ``wall-clock-sites``) and arrives on the
# context as ``ctx.config``.  Every allowlisted site must store its
# reading only into *_wall_s / *_rtt_s telemetry fields (or use it for
# I/O retry deadlines, never simulated time).  Adding a site is a
# reviewed change to the determinism contract — see DESIGN.md section 9.


@rule("DET002", "wall clock confined to allowlisted telemetry sites")
def det002_wall_clock(ctx: LintContext) -> Iterable[Finding]:
    if ctx.relpath in ctx.config.wall_clock_module_set:
        return
    aliases = _import_aliases(ctx.tree)
    owner = _enclosing_functions(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _canonical_name(node.func, aliases)
        if name is None:
            continue
        # `from datetime import datetime` then `datetime.now()` resolves
        # to "datetime.datetime.now" through the alias map already.
        if name not in _WALL_CLOCK_CALLS:
            continue
        site = (ctx.relpath, owner.get(node, "<module>"))
        if site in ctx.config.wall_clock_site_set:
            continue
        yield ctx.finding(
            node,
            "DET002",
            f"wall-clock call {name}() outside the telemetry allowlist; "
            "simulation logic must use simulated time, and telemetry "
            "readings may only land in *_wall_s/*_rtt_s fields",
        )


# ---------------------------------------------------------------------------
# DET003 — no exact equality between float simulation times


def _is_seconds_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id.endswith("_s") and not node.id.endswith("__s")
    if isinstance(node, ast.Attribute):
        return node.attr.endswith("_s")
    return False


@rule("DET003", "no ==/!= between float simulation times")
def det003_float_time_equality(ctx: LintContext) -> Iterable[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_seconds_expr(left) or _is_seconds_expr(right):
                yield ctx.finding(
                    node,
                    "DET003",
                    "exact ==/!= between float simulation times; use "
                    "math.isclose or integer ticks",
                )


# ---------------------------------------------------------------------------
# OBS001 — obs runtime hook slots must be None-guarded at every use

_OBS_SLOTS = {"TRACE", "METRICS", "SPANS", "HEALTH"}
_RUNTIME_MODULE_SUFFIXES = ("obs.runtime", "repro.obs.runtime")


def _runtime_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to the ``repro.obs.runtime`` module."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for item in node.names:
                if item.name == "runtime" and module.endswith("obs"):
                    out.add(item.asname or item.name)
                elif module.endswith(_RUNTIME_MODULE_SUFFIXES) and (
                    item.name in _OBS_SLOTS
                ):
                    # handled separately: importing a slot freezes it
                    pass
        elif isinstance(node, ast.Import):
            for item in node.names:
                if item.name.endswith(_RUNTIME_MODULE_SUFFIXES):
                    out.add(item.asname or item.name.split(".")[0])
    return out


def _slot_of(node: ast.expr, runtime_names: Set[str]) -> Optional[str]:
    """``_obs.TRACE``-style slot read -> slot name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and node.attr in _OBS_SLOTS
        and isinstance(node.value, ast.Name)
        and node.value.id in runtime_names
    ):
        return node.attr
    return None


class _GuardChecker:
    """Flags unguarded uses of variables holding obs hook slots."""

    def __init__(self, ctx: LintContext, runtime_names: Set[str]) -> None:
        self.ctx = ctx
        self.runtime_names = runtime_names
        self.findings: List[Finding] = []

    # -- expression scan --------------------------------------------------

    def scan_expr(self, node: Optional[ast.AST], bound: Set[str], guarded: Set[str]) -> None:
        if node is None:
            return
        if isinstance(node, ast.Call):
            func = node.func
            # Direct chained use: _obs.TRACE.emit(...)
            if isinstance(func, ast.Attribute) and _slot_of(
                func.value, self.runtime_names
            ):
                slot = _slot_of(func.value, self.runtime_names)
                self.findings.append(
                    self.ctx.finding(
                        node,
                        "OBS001",
                        f"unguarded call through obs slot {slot}; bind it "
                        "to a local and None-check before use",
                    )
                )
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in bound
                and func.value.id not in guarded
            ):
                self.findings.append(
                    self.ctx.finding(
                        node,
                        "OBS001",
                        f"call on {func.value.id!r} (an obs hook slot) "
                        "outside an `is not None` guard",
                    )
                )
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            acc = set(guarded)
            for value in node.values:
                self.scan_expr(value, bound, acc)
                acc |= self._guards_from_test(value, bound)
            return
        if isinstance(node, ast.IfExp):
            pos = self._guards_from_test(node.test, bound)
            self.scan_expr(node.test, bound, guarded)
            self.scan_expr(node.body, bound, guarded | pos)
            self.scan_expr(node.orelse, bound, guarded)
            return
        for child in ast.iter_child_nodes(node):
            self.scan_expr(child, bound, guarded)

    # -- guard extraction --------------------------------------------------

    def _guards_from_test(
        self, test: ast.expr, bound: Set[str]
    ) -> Set[str]:
        """Variables proven non-None when ``test`` is truthy."""
        out: Set[str] = set()
        if isinstance(test, ast.Name) and test.id in bound:
            out.add(test.id)
        elif isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, op, right = test.left, test.ops[0], test.comparators[0]
            if (
                isinstance(op, ast.IsNot)
                and isinstance(left, ast.Name)
                and left.id in bound
                and isinstance(right, ast.Constant)
                and right.value is None
            ):
                out.add(left.id)
        elif isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                out |= self._guards_from_test(value, bound)
        return out

    def _negative_guards(self, test: ast.expr, bound: Set[str]) -> Set[str]:
        """Variables proven non-None when ``test`` is *falsy* (is None)."""
        out: Set[str] = set()
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, op, right = test.left, test.ops[0], test.comparators[0]
            if (
                isinstance(op, ast.Is)
                and isinstance(left, ast.Name)
                and left.id in bound
                and isinstance(right, ast.Constant)
                and right.value is None
            ):
                out.add(left.id)
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            out |= self._guards_from_test(test.operand, bound)
        return out

    @staticmethod
    def _diverges(body: Sequence[ast.stmt]) -> bool:
        return bool(body) and isinstance(
            body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
        )

    # -- statement scan ----------------------------------------------------

    def check_block(
        self, stmts: Sequence[ast.stmt], bound: Set[str], guarded: Set[str]
    ) -> None:
        bound = set(bound)
        guarded = set(guarded)
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                self.scan_expr(stmt.value, bound, guarded)
                slot = _slot_of(stmt.value, self.runtime_names)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if slot is not None:
                            bound.add(target.id)
                            guarded.discard(target.id)
                        else:
                            bound.discard(target.id)
                            guarded.discard(target.id)
            elif isinstance(stmt, ast.If):
                self.scan_expr(stmt.test, bound, guarded)
                pos = self._guards_from_test(stmt.test, bound)
                neg = self._negative_guards(stmt.test, bound)
                self.check_block(stmt.body, bound, guarded | pos)
                self.check_block(stmt.orelse, bound, guarded | neg)
                # `if rec is None: return` guards the rest of the block.
                if neg and self._diverges(stmt.body):
                    guarded |= neg
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self.scan_expr(stmt.iter, bound, guarded)
                self.check_block(stmt.body, bound, guarded)
                self.check_block(stmt.orelse, bound, guarded)
            elif isinstance(stmt, ast.While):
                self.scan_expr(stmt.test, bound, guarded)
                pos = self._guards_from_test(stmt.test, bound)
                self.check_block(stmt.body, bound, guarded | pos)
                self.check_block(stmt.orelse, bound, guarded)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self.scan_expr(item.context_expr, bound, guarded)
                self.check_block(stmt.body, bound, guarded)
            elif isinstance(stmt, ast.Try):
                self.check_block(stmt.body, bound, guarded)
                for handler in stmt.handlers:
                    self.check_block(handler.body, bound, guarded)
                self.check_block(stmt.orelse, bound, guarded)
                self.check_block(stmt.finalbody, bound, guarded)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                # Fresh scope: slot bindings do not leak in.
                self.check_block(stmt.body, set(), set())
            elif isinstance(stmt, ast.ClassDef):
                self.check_block(stmt.body, set(), set())
            else:
                self.scan_expr(stmt, bound, guarded)


@rule("OBS001", "obs hook slots None-guarded at every call site")
def obs001_guarded_hooks(ctx: LintContext) -> Iterable[Finding]:
    runtime_names = _runtime_aliases(ctx.tree)
    findings: List[Finding] = []
    # Importing a slot value directly freezes the disabled default.
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.endswith(_RUNTIME_MODULE_SUFFIXES):
                for item in node.names:
                    if item.name in _OBS_SLOTS:
                        findings.append(
                            ctx.finding(
                                node,
                                "OBS001",
                                f"`from ...runtime import {item.name}` "
                                "freezes the slot at import time; import "
                                "the runtime module and read the "
                                "attribute at call time",
                            )
                        )
    if runtime_names:
        checker = _GuardChecker(ctx, runtime_names)
        checker.check_block(ctx.tree.body, set(), set())
        findings.extend(checker.findings)
    return findings


# ---------------------------------------------------------------------------
# OBS002 — metric/alert names snake_case; families registered consistently

_METRIC_FACTORY_METHODS = {"counter", "gauge", "histogram"}
_ALERT_RULE_CLASSES = {"AlertRule", "repro.obs.health.AlertRule"}
_SNAKE_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def _literal_str(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _call_arg(
    call: ast.Call, index: int, keyword: str
) -> Optional[ast.expr]:
    """Positional-or-keyword argument of ``call``, or None."""
    if len(call.args) > index:
        return call.args[index]
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


@rule("OBS002", "metric/alert names snake_case; families registered once")
def obs002_metric_names(ctx: LintContext) -> Iterable[Finding]:
    aliases = _import_aliases(ctx.tree)
    # name -> (kind, help) as first registered within this file.
    families: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _METRIC_FACTORY_METHODS
        ):
            name = _literal_str(_call_arg(node, 0, "name"))
            if name is None:
                continue  # dynamic names checked at run time
            if not _SNAKE_NAME_RE.match(name):
                yield ctx.finding(
                    node,
                    "OBS002",
                    f"metric name {name!r} is not snake_case "
                    "([a-z][a-z0-9_]*)",
                )
            help_ = _literal_str(_call_arg(node, 1, "help_")) or ""
            kind = func.attr
            seen = families.get(name)
            if seen is None:
                families[name] = (kind, help_)
            else:
                seen_kind, seen_help = seen
                if seen_kind != kind:
                    yield ctx.finding(
                        node,
                        "OBS002",
                        f"metric {name!r} re-registered as {kind} "
                        f"(first registered as {seen_kind})",
                    )
                elif help_ and seen_help and help_ != seen_help:
                    yield ctx.finding(
                        node,
                        "OBS002",
                        f"metric {name!r} re-registered with a different "
                        f"help string ({help_!r} vs {seen_help!r})",
                    )
                elif help_ and not seen_help:
                    families[name] = (kind, help_)
        else:
            canon = _canonical_name(func, aliases)
            if canon is None or canon not in _ALERT_RULE_CLASSES:
                continue
            name = _literal_str(_call_arg(node, 0, "name"))
            if name is not None and not _SNAKE_NAME_RE.match(name):
                yield ctx.finding(
                    node,
                    "OBS002",
                    f"alert rule name {name!r} is not snake_case "
                    "([a-z][a-z0-9_]*)",
                )


# ---------------------------------------------------------------------------
# API001 — public functions and dataclasses carry type annotations


def _is_public_def(
    fn: ast.AST, owner: Optional[ast.ClassDef]
) -> bool:
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    name = fn.name
    if owner is not None and owner.name.startswith("_"):
        return False
    if name.startswith("__") and name.endswith("__"):
        return owner is not None  # dunder methods of public classes
    return not name.startswith("_")


def _unannotated_args(
    fn: ast.AST, is_method: bool
) -> Iterator[str]:
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = fn.args
    positional = [*args.posonlyargs, *args.args]
    for index, arg in enumerate(positional):
        if is_method and index == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            yield arg.arg
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            yield arg.arg
    if args.vararg is not None and args.vararg.annotation is None:
        yield f"*{args.vararg.arg}"
    if args.kwarg is not None and args.kwarg.annotation is None:
        yield f"**{args.kwarg.arg}"


@rule("API001", "public functions/dataclasses fully type-annotated")
def api001_public_annotations(ctx: LintContext) -> Iterable[Finding]:
    aliases = _import_aliases(ctx.tree)
    for node, owner in _iter_defs(ctx.tree.body):
        if isinstance(node, ast.ClassDef):
            if node.name.startswith("_") or not _is_dataclass(node, aliases):
                continue
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    targets = [
                        t.id
                        for t in stmt.targets
                        if isinstance(t, ast.Name) and not t.id.startswith("_")
                    ]
                    for name in targets:
                        yield ctx.finding(
                            stmt,
                            "API001",
                            f"unannotated class attribute {name!r} in "
                            f"dataclass {node.name}; annotate it (or mark "
                            "ClassVar) so it is a typed field",
                        )
            continue
        if not _is_public_def(node, owner):
            continue
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        qual = f"{owner.name}.{node.name}" if owner else node.name
        missing = list(_unannotated_args(node, is_method=owner is not None))
        if missing:
            yield ctx.finding(
                node,
                "API001",
                f"public function {qual} missing parameter annotations: "
                + ", ".join(missing),
            )
        if node.returns is None:
            yield ctx.finding(
                node,
                "API001",
                f"public function {qual} missing a return annotation",
            )


# ---------------------------------------------------------------------------
# UNIT001 — physical-quantity fields carry unit suffixes

_QUANTITY_STEMS = (
    "time",
    "duration",
    "delay",
    "latency",
    "timeout",
    "deadline",
    "interval",
    "period",
    "airtime",
    "backoff",
    "jitter",
    "freq",
    "frequency",
    "bandwidth",
    "power",
    "rssi",
    "snr",
    "noise",
    "gain",
    "sensitivity",
    "distance",
    "radius",
    "height",
    "altitude",
)

_UNIT_SUFFIXES = (
    "_s",
    "_ms",
    "_us",
    "_ns",
    "_hz",
    "_khz",
    "_mhz",
    "_ghz",
    "_dbm",
    "_db",
    "_dbi",
    "_m",
    "_km",
    "_bps",
    "_sps",
    "_ppm",
    "_bytes",
    "_symbols",
)

# A trailing kind-token marks a dimensionless field (an index, a count,
# a fraction): `tx_power_index` is not a power and needs no dBm suffix.
_DIMENSIONLESS_KINDS = (
    "index",
    "idx",
    "count",
    "frac",
    "fraction",
    "ratio",
    "factor",
    "multiplier",
    "prob",
    "probability",
)

_NUMERIC_ANNOTATIONS = {
    "float",
    "int",
    "Optional[float]",
    "Optional[int]",
    "float | None",
    "int | None",
    "None | float",
    "None | int",
}


def _annotation_text(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed code
        return ""


def _names_quantity(name: str) -> bool:
    tokens = name.lower().split("_")
    if tokens and tokens[-1] in _DIMENSIONLESS_KINDS:
        return False
    return any(stem in tokens for stem in _QUANTITY_STEMS)


@rule("UNIT001", "physical-quantity dataclass fields carry unit suffixes")
def unit001_quantity_suffix(ctx: LintContext) -> Iterable[Finding]:
    aliases = _import_aliases(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not _is_dataclass(node, aliases):
            continue
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            name = stmt.target.id
            if name.startswith("_"):
                continue
            annotation = _annotation_text(stmt.annotation).replace(" ", "")
            if annotation not in {
                a.replace(" ", "") for a in _NUMERIC_ANNOTATIONS
            }:
                continue
            if not _names_quantity(name):
                continue
            if name.endswith(_UNIT_SUFFIXES):
                continue
            yield ctx.finding(
                stmt,
                "UNIT001",
                f"field {node.name}.{name} looks like a physical quantity "
                "but has no unit suffix (_s, _hz, _dbm, _db, _m, ...)",
            )
