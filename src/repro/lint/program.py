"""Project-wide symbol table and call graph for the deep lint pass.

Zero-dependency, AST-based: every module under analysis is parsed once
into a :class:`ModuleInfo` (functions, classes, import aliases, noqa
suppressions) and cached in-process by file blake2b digest, so repeated
``lint --deep`` runs in one session re-parse only edited files.  A
:class:`ProgramIndex` then links call sites to their target functions
with deliberately conservative heuristics:

* canonical dotted paths through the import-alias map (including
  relative imports), matched against known function/class qualnames;
* ``self.method()`` / ``cls.method()`` resolved through the enclosing
  class and its project-local base classes;
* ``Class()`` constructor calls resolved to ``Class.__init__``;
* locals assigned from a project-class constructor
  (``gw = Gateway(...)``) resolved through that class for
  ``gw.method()`` calls;
* a last-resort *unique method name* fallback: ``obj.method()`` links
  only if exactly one project class defines ``method`` (common
  container-protocol names are excluded to avoid linking
  ``queue.append`` to an unrelated class).

Unresolved calls keep their canonical dotted name on the
:class:`CallSite`, so passes that classify *external* primitives (the
wall clock, ``random.*``) still see them.  The graph over-approximates
inside a function (nested defs and lambdas count as part of their
parent — assumed called) and under-approximates across objects (an
ambiguous method name links nowhere); DESIGN.md section 9 discusses the
resulting failure modes per rule.
"""

from __future__ import annotations

import ast
import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .engine import iter_python_files, parse_suppressions

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProgramIndex",
    "build_program",
    "module_name_for",
]

# Method names too generic to trust for unique-name call linking: they
# collide with list/set/dict/deque/str protocols on ordinary values.
_AMBIGUOUS_METHOD_NAMES = {
    "add",
    "append",
    "appendleft",
    "clear",
    "close",
    "copy",
    "count",
    "decode",
    "discard",
    "encode",
    "extend",
    "format",
    "get",
    "index",
    "insert",
    "items",
    "join",
    "keys",
    "pop",
    "popleft",
    "put",
    "read",
    "remove",
    "replace",
    "setdefault",
    "sort",
    "split",
    "strip",
    "update",
    "values",
    "write",
}


def module_name_for(relpath: str) -> str:
    """Dotted module name of a repo-relative path.

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine``;
    ``src/repro/obs/__init__.py`` -> ``repro.obs``;
    ``tests/lint/test_rules.py`` -> ``tests.lint.test_rules``.
    """
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class CallSite:
    """One call expression inside a function body.

    ``callee`` is the canonical dotted name as written (alias-resolved;
    None when the callee is not a Name/Attribute chain, e.g. a call on
    a call result).  ``targets`` are qualnames of project functions the
    call may invoke — empty for external or unresolvable callees.
    """

    node: ast.Call
    line: int
    col: int
    end_line: int
    callee: Optional[str]
    targets: Tuple[str, ...] = ()


@dataclass
class FunctionInfo:
    """One top-level function or method of an analyzed module."""

    qualname: str
    module: str
    relpath: str
    name: str
    class_name: Optional[str]
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    lineno: int
    end_lineno: int
    calls: List[CallSite] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One class of an analyzed module."""

    qualname: str
    module: str
    name: str
    bases: Tuple[str, ...]  # canonical dotted names of base expressions
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qualname


@dataclass
class ModuleInfo:
    """Parse artifacts of one module (cacheable by content digest)."""

    relpath: str
    module: str
    digest: str
    tree: ast.Module
    aliases: Dict[str, str]
    suppressions: Dict[int, Set[str]]
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


# relpath -> (digest, ModuleInfo): parse cache for the current process.
_MODULE_CACHE: Dict[str, Tuple[str, ModuleInfo]] = {}


def _relative_import_base(module: str, relpath: str, level: int) -> str:
    """The absolute package a ``from ...x import y`` resolves against."""
    parts = module.split(".") if module else []
    # The importing module's package: the module itself for __init__.py,
    # its parent otherwise.
    if not relpath.endswith("/__init__.py") and parts:
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[:-drop] if drop <= len(parts) else []
    return ".".join(parts)


def _module_aliases(
    tree: ast.Module, module: str, relpath: str
) -> Dict[str, str]:
    """Import-alias map including relative imports (level > 0)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                base = _relative_import_base(module, relpath, node.level)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            if not base:
                continue
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{base}.{item.name}"
    return aliases


def _canonical(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted path of a Name/Attribute chain, or None."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(aliases.get(cur.id, cur.id))
    return ".".join(reversed(parts))


def _parse_module(relpath: str, source: str, digest: str) -> ModuleInfo:
    tree = ast.parse(source, filename=relpath)
    module = module_name_for(relpath)
    info = ModuleInfo(
        relpath=relpath,
        module=module,
        digest=digest,
        tree=tree,
        aliases=_module_aliases(tree, module, relpath),
        suppressions=parse_suppressions(source),
    )

    def add_function(
        node: ast.AST, class_info: Optional[ClassInfo]
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        owner = f"{class_info.qualname}." if class_info else f"{module}."
        qualname = f"{owner}{node.name}"
        fn = FunctionInfo(
            qualname=qualname,
            module=module,
            relpath=relpath,
            name=node.name,
            class_name=class_info.name if class_info else None,
            node=node,
            lineno=node.lineno,
            end_lineno=getattr(node, "end_lineno", node.lineno),
        )
        info.functions[qualname] = fn
        if class_info is not None:
            class_info.methods[node.name] = qualname

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(stmt, None)
        elif isinstance(stmt, ast.ClassDef):
            bases = tuple(
                name
                for name in (
                    _canonical(b, info.aliases) for b in stmt.bases
                )
                if name is not None
            )
            cls = ClassInfo(
                qualname=f"{module}.{stmt.name}",
                module=module,
                name=stmt.name,
                bases=bases,
            )
            info.classes[cls.qualname] = cls
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add_function(sub, cls)
    return info


@dataclass
class ProgramIndex:
    """The linked whole-program view over a set of modules."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)  # by relpath
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    parse_errors: List[str] = field(default_factory=list)

    # -- lookups -----------------------------------------------------------

    def module_of(self, fn: FunctionInfo) -> ModuleInfo:
        return self.modules[fn.relpath]

    def class_of(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        if fn.class_name is None:
            return None
        return self.classes.get(f"{fn.module}.{fn.class_name}")

    def resolve_class(
        self, name: str, module: Optional[ModuleInfo] = None
    ) -> Optional[ClassInfo]:
        """A class by canonical dotted name, trying module-local last."""
        cls = self.classes.get(name)
        if cls is None and module is not None and "." not in name:
            cls = self.classes.get(f"{module.module}.{name}")
        return cls

    def _method_in_hierarchy(
        self, cls: ClassInfo, method: str, _depth: int = 0
    ) -> Optional[str]:
        if method in cls.methods:
            return cls.methods[method]
        if _depth >= 8:  # cycle/diamond guard
            return None
        module = None
        for info in self.modules.values():
            if info.module == cls.module:
                module = info
                break
        for base_name in cls.bases:
            base = self.resolve_class(base_name, module)
            if base is not None and base is not cls:
                found = self._method_in_hierarchy(
                    base, method, _depth + 1
                )
                if found is not None:
                    return found
        return None

    # -- call resolution ---------------------------------------------------

    def _link_module(self, info: ModuleInfo) -> None:
        method_index: Dict[str, List[str]] = {}
        for cls in self.classes.values():
            for name, qualname in cls.methods.items():
                method_index.setdefault(name, []).append(qualname)

        for fn in info.functions.values():
            fn.calls = self._extract_calls(fn, info, method_index)

    def _extract_calls(
        self,
        fn: FunctionInfo,
        info: ModuleInfo,
        method_index: Dict[str, List[str]],
    ) -> List[CallSite]:
        own_class = self.class_of(fn)
        # Locals assigned from project-class constructors: name -> class.
        constructed: Dict[str, ClassInfo] = {}
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            callee = _canonical(node.value.func, info.aliases)
            cls = (
                self.resolve_class(callee, info)
                if callee is not None
                else None
            )
            if cls is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    constructed[target.id] = cls

        calls: List[CallSite] = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = _canonical(node.func, info.aliases)
            targets = self._resolve_targets(
                node, callee, fn, info, own_class, constructed, method_index
            )
            calls.append(
                CallSite(
                    node=node,
                    line=node.lineno,
                    col=node.col_offset,
                    end_line=getattr(node, "end_lineno", node.lineno),
                    callee=callee,
                    targets=tuple(targets),
                )
            )
        return calls

    def _resolve_targets(
        self,
        node: ast.Call,
        callee: Optional[str],
        fn: FunctionInfo,
        info: ModuleInfo,
        own_class: Optional[ClassInfo],
        constructed: Dict[str, ClassInfo],
        method_index: Dict[str, List[str]],
    ) -> List[str]:
        func = node.func
        # self.method() / cls.method() through the class hierarchy.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and own_class is not None
        ):
            found = self._method_in_hierarchy(own_class, func.attr)
            return [found] if found is not None else []
        # gw.method() where `gw = Gateway(...)` in this function.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in constructed
        ):
            found = self._method_in_hierarchy(
                constructed[func.value.id], func.attr
            )
            if found is not None:
                return [found]
        if callee is not None:
            # Exact function qualname (module-level or Class.method).
            if callee in self.functions:
                return [callee]
            # Same-module shorthand: local function or class.
            local = f"{info.module}.{callee}"
            if local in self.functions:
                return [local]
            # Constructor call -> __init__ (class with no __init__ of its
            # own still terminates the chain: nothing project-side runs).
            cls = self.resolve_class(callee, info)
            if cls is not None:
                found = self._method_in_hierarchy(cls, "__init__")
                return [found] if found is not None else []
        # Unique-method-name fallback for attribute calls on values of
        # unknown type.
        if isinstance(func, ast.Attribute):
            name = func.attr
            if (
                name not in _AMBIGUOUS_METHOD_NAMES
                and not name.startswith("__")
            ):
                candidates = method_index.get(name, ())
                if len(candidates) == 1:
                    return list(candidates)
        return []

    # -- reachability ------------------------------------------------------

    def resolve_function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def reachable_chains(
        self,
        roots: Sequence[str],
        stop: Optional[Callable[[FunctionInfo], bool]] = None,
    ) -> Dict[str, Tuple[str, ...]]:
        """BFS over the call graph from ``roots``.

        Returns ``{function qualname: shortest call chain from a root}``
        (the chain includes both endpoints).  Functions for which
        ``stop`` returns True are included in the result but not
        expanded — they are analysis *boundaries* (e.g. telemetry
        sites).
        """
        chains: Dict[str, Tuple[str, ...]] = {}
        queue: deque = deque()
        for root in roots:
            if root in self.functions and root not in chains:
                chains[root] = (root,)
                queue.append(root)
        while queue:
            current = queue.popleft()
            fn = self.functions[current]
            if stop is not None and stop(fn) and len(chains[current]) > 1:
                continue
            for call in fn.calls:
                for target in call.targets:
                    if target in chains or target not in self.functions:
                        continue
                    chains[target] = chains[current] + (target,)
                    queue.append(target)
        return chains


def build_program(
    paths: Sequence[str], root: Optional[str] = None
) -> ProgramIndex:
    """Parse and link every Python file reachable from ``paths``.

    Parse artifacts are cached per file by blake2b digest; the linking
    pass (call-target resolution) always reruns, because targets depend
    on every *other* module in the program.
    """
    index = ProgramIndex()
    for abspath, relpath in iter_python_files(paths, root=root):
        try:
            with open(abspath, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            index.parse_errors.append(f"{relpath}: {exc}")
            continue
        digest = hashlib.blake2b(raw, digest_size=16).hexdigest()
        cached = _MODULE_CACHE.get(relpath)
        if cached is not None and cached[0] == digest:
            info = cached[1]
        else:
            try:
                source = raw.decode("utf-8")
                info = _parse_module(relpath, source, digest)
            except (SyntaxError, UnicodeDecodeError) as exc:
                msg = getattr(exc, "msg", None) or str(exc)
                lineno = getattr(exc, "lineno", None)
                where = f" (line {lineno})" if lineno else ""
                index.parse_errors.append(f"{relpath}: {msg}{where}")
                _MODULE_CACHE.pop(relpath, None)
                continue
            _MODULE_CACHE[relpath] = (digest, info)
        index.modules[relpath] = info
        index.functions.update(info.functions)
        index.classes.update(info.classes)
    for info in index.modules.values():
        index._link_module(info)
    return index
