"""Determinism & invariant linter for the AlphaWAN reproduction.

A zero-dependency, AST-based static-analysis pass that machine-checks
the invariants the repo's byte-for-byte reproducibility claims rest on:

=========  ==============================================================
Rule id    Invariant
=========  ==============================================================
DET001     All RNG flows from an explicit seed expression — no
           process-global ``random.*``/``numpy.random.*`` streams, no
           unseeded or literal-seeded ``random.Random``.
DET002     Wall clock (``time.time``/``perf_counter``/``datetime.now``)
           confined to an allowlist of telemetry sites whose readings
           land only in ``*_wall_s``/``*_rtt_s`` fields (allowlist in
           the ``[tool.repro-lint]`` table of pyproject.toml).
DET003     No ``==``/``!=`` between float simulation times — use
           ``math.isclose`` or integer ticks.
OBS001     Every ``repro.obs`` hook-slot use is None-guarded, keeping
           disabled-observability overhead <5 %.
API001     Public functions and dataclasses in ``src/repro`` carry
           complete type annotations.
UNIT001    Numeric dataclass fields naming physical quantities carry a
           unit suffix (``_s``, ``_hz``, ``_dbm``, ``_db``, ``_m`` ...).
=========  ==============================================================

Whole-program rules (``lint --deep``; need the project call graph from
:mod:`repro.lint.program`, so they live in their own registry):

=========  ==============================================================
DET010     No call path from a configured *pure root* (the simulation
           event loop, the gateway pipeline, phy interference) reaches
           wall-clock, unseeded RNG, filesystem, or env access; the
           offending call chain is rendered in the finding.
RACE001    An attribute mutated under ``with self._lock:`` somewhere is
           never mutated without that lock elsewhere (lexically or on
           every call path — interprocedural must-hold analysis).
RACE002    No call made while holding a lock into a function that
           itself acquires locks (ordering hazards / self-deadlock);
           re-entrant same-RLock acquisition is exempt.
PERF001    No per-iteration allocation patterns (``dataclasses.replace``,
           self-rebuilding comprehensions, closures) in loops of
           functions reachable from the pure roots.
PERF002    No deep attribute chain read repeatedly inside one hot-loop
           iteration — hoist into a local.
=========  ==============================================================

Entry points: ``python -m repro.tools lint`` (CLI; ``--deep`` for the
whole-program passes, ``--changed`` for touched-files-only reporting),
``make lint``, the pytest gate ``tests/lint/test_repo_clean.py``, and
the library APIs :func:`lint_paths` / :func:`run_deep`.  Inline
suppression: ``# repro: noqa[RULE-ID]`` on any physical line of the
offending statement; legacy debt lives in the tracked baseline
(``lint-baseline.json``).  DESIGN.md section 9 is the human-readable
contract.
"""

from __future__ import annotations

from .baseline import apply_baseline, load_baseline, write_baseline
from .config import DEFAULT_CONFIG, LintConfig, load_config
from .engine import (
    LintContext,
    LintReport,
    Rule,
    RULES,
    is_suppressed,
    iter_python_files,
    lint_paths,
    lint_source,
    rule,
)
from .findings import (
    Finding,
    render_github,
    render_json,
    render_sarif,
    render_text,
)
from . import rules as _rules  # noqa: F401  (populates the registry)
from .deeprules import DEEP_RULES, DeepRule, deep_rule, run_deep
from .program import ProgramIndex, build_program

__all__ = [
    "DEEP_RULES",
    "DEFAULT_CONFIG",
    "DeepRule",
    "Finding",
    "LintConfig",
    "LintContext",
    "LintReport",
    "ProgramIndex",
    "Rule",
    "RULES",
    "apply_baseline",
    "build_program",
    "deep_rule",
    "is_suppressed",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "load_config",
    "render_github",
    "render_json",
    "render_sarif",
    "render_text",
    "rule",
    "run_deep",
    "write_baseline",
]
