"""Determinism & invariant linter for the AlphaWAN reproduction.

A zero-dependency, AST-based static-analysis pass that machine-checks
the invariants the repo's byte-for-byte reproducibility claims rest on:

=========  ==============================================================
Rule id    Invariant
=========  ==============================================================
DET001     All RNG flows from an explicit seed expression — no
           process-global ``random.*``/``numpy.random.*`` streams, no
           unseeded or literal-seeded ``random.Random``.
DET002     Wall clock (``time.time``/``perf_counter``/``datetime.now``)
           confined to an allowlist of telemetry sites whose readings
           land only in ``*_wall_s``/``*_rtt_s`` fields.
DET003     No ``==``/``!=`` between float simulation times — use
           ``math.isclose`` or integer ticks.
OBS001     Every ``repro.obs`` hook-slot use is None-guarded, keeping
           disabled-observability overhead <5 %.
API001     Public functions and dataclasses in ``src/repro`` carry
           complete type annotations.
UNIT001    Numeric dataclass fields naming physical quantities carry a
           unit suffix (``_s``, ``_hz``, ``_dbm``, ``_db``, ``_m`` ...).
=========  ==============================================================

Entry points: ``python -m repro.tools lint`` (CLI), ``make lint``, the
pytest gate ``tests/lint/test_repo_clean.py``, and the library API
:func:`lint_paths`.  Inline suppression: ``# repro: noqa[RULE-ID]``;
legacy debt lives in the tracked baseline (``lint-baseline.json``).
DESIGN.md section 9 is the human-readable contract.
"""

from __future__ import annotations

from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import (
    LintContext,
    LintReport,
    Rule,
    RULES,
    iter_python_files,
    lint_paths,
    lint_source,
    rule,
)
from .findings import Finding, render_json, render_text
from . import rules as _rules  # noqa: F401  (populates the registry)

__all__ = [
    "Finding",
    "LintContext",
    "LintReport",
    "Rule",
    "RULES",
    "apply_baseline",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_json",
    "render_text",
    "rule",
    "write_baseline",
]
