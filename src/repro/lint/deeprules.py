"""Whole-program analysis passes: purity, lock discipline, hot loops.

These rules run only under ``repro.tools lint --deep``: they need the
:class:`~repro.lint.program.ProgramIndex` (symbol table + call graph)
rather than a single file's AST, so they live in their own registry
(:data:`DEEP_RULES`) and never fire during the per-file pass.

The three analyses (DESIGN.md section 9 has the full contracts):

* **DET010 transitive purity** — from the configured ``pure-roots``
  (the simulation event loop, the gateway pipeline, phy interference),
  report every call path that reaches a wall-clock read, unseeded RNG,
  filesystem, or environment access.  The DET002 telemetry allowlist
  doubles as the traversal boundary: an allowlisted function is
  reachable but not descended into.
* **RACE001/RACE002 lock discipline** — for each class holding a
  ``threading.Lock``/``RLock`` attribute, infer which attributes that
  lock guards from ``with self._lock:`` regions, then flag mutations
  outside the guard (RACE001) and calls made while holding a lock into
  functions that themselves acquire locks (RACE002; re-entrant
  same-RLock acquisition is exempt, same-plain-Lock is a deadlock).
  A mutation is "guarded" if the lock is held lexically *or* on every
  call path into the function (interprocedural must-hold fixpoint), so
  private helpers called only under the lock stay clean.
* **PERF001/PERF002 hot-loop hygiene** — inside functions reachable
  from the pure roots, flag per-iteration allocation patterns
  (``dataclasses.replace``, self-rebuilding comprehensions, closures
  defined in the loop) and deep attribute chains read repeatedly in one
  loop (hoist into a local).

Suppression: findings honor ``# repro: noqa[ID]`` at the *definition
site* (the flagged line, which silences every call path through it);
DET010 additionally honors a noqa on the root's *call site* of the
chain's first hop, which silences only chains entering through that
edge.  Definition-site suppression therefore wins — it is strictly
broader.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .config import LintConfig, load_config
from .engine import LintReport, is_suppressed
from .findings import Finding
from .program import (
    CallSite,
    ClassInfo,
    FunctionInfo,
    ProgramIndex,
    build_program,
)
from .rules import _WALL_CLOCK_CALLS, _seed_argument_ok

__all__ = ["DeepRule", "DEEP_RULES", "deep_rule", "run_deep"]

DeepRuleFn = Callable[[ProgramIndex, LintConfig], Iterable[Finding]]


@dataclass(frozen=True)
class DeepRule:
    """A registered whole-program rule."""

    rule_id: str
    summary: str
    fn: DeepRuleFn


# rule id -> DeepRule, in registration order (separate from the
# per-file RULES registry: these need a ProgramIndex, not a file).
DEEP_RULES: Dict[str, DeepRule] = {}


def deep_rule(
    rule_id: str, summary: str
) -> Callable[[DeepRuleFn], DeepRuleFn]:
    """Register ``fn`` as the implementation of deep rule ``rule_id``."""

    def decorate(fn: DeepRuleFn) -> DeepRuleFn:
        if rule_id in DEEP_RULES:
            raise ValueError(f"duplicate deep rule id {rule_id!r}")
        DEEP_RULES[rule_id] = DeepRule(
            rule_id=rule_id, summary=summary, fn=fn
        )
        return fn

    return decorate


def _finding(fn: FunctionInfo, node: ast.AST, rule_id: str, message: str) -> Finding:
    line = getattr(node, "lineno", fn.lineno)
    return Finding(
        path=fn.relpath,
        line=line,
        col=getattr(node, "col_offset", 0),
        rule_id=rule_id,
        message=message,
        end_line=getattr(node, "end_lineno", None) or line,
    )


def _display(qualname: str) -> str:
    """Compact display form of a function qualname for chain rendering."""
    return qualname[len("repro.") :] if qualname.startswith("repro.") else qualname


def _is_boundary(fn: FunctionInfo, config: LintConfig) -> bool:
    """Telemetry functions: reachable, but purity analysis stops here."""
    return (
        fn.relpath in config.wall_clock_module_set
        or (fn.relpath, fn.name) in config.wall_clock_site_set
    )


# ---------------------------------------------------------------------------
# DET010 — transitive purity from the configured roots

_RNG_EXEMPT_CONSTRUCTORS = {"Random", "SystemRandom"}
_NUMPY_SEEDED_FACTORIES = {
    "default_rng",
    "RandomState",
    "Generator",
    "SeedSequence",
}
_RNG_CALLS = {"os.urandom", "uuid.uuid4", "uuid.uuid1"}
_FS_CALLS = {
    "open",
    "os.open",
    "os.remove",
    "os.unlink",
    "os.rename",
    "os.replace",
    "os.mkdir",
    "os.makedirs",
    "os.rmdir",
    "os.removedirs",
    "os.listdir",
    "os.scandir",
    "os.stat",
    "os.walk",
    "os.fsync",
    "os.path.exists",
    "os.path.isfile",
    "os.path.isdir",
    "os.path.getmtime",
    "os.path.getsize",
}
_FS_PREFIXES = ("shutil.", "tempfile.", "glob.")
_ENV_CALLS = {
    "os.getenv",
    "os.putenv",
    "os.unsetenv",
    "os.environ.get",
    "os.environ.setdefault",
    "os.environ.pop",
    "os.environ.update",
    "os.environ.copy",
}


def _classify_impure(
    callee: str, call: ast.Call
) -> Optional[Tuple[str, str]]:
    """``(category, detail)`` when a canonical callee is impure."""
    if callee in _WALL_CLOCK_CALLS:
        return ("wall-clock", f"{callee}()")
    if callee in _RNG_CALLS or callee.startswith("secrets."):
        return ("unseeded RNG", f"{callee}()")
    if callee.startswith("random."):
        attr = callee.split(".", 1)[1]
        if attr in _RNG_EXEMPT_CONSTRUCTORS:
            if not _seed_argument_ok(call):
                return ("unseeded RNG", f"{callee}() without a derived seed")
            return None
        if "." not in attr:
            return ("unseeded RNG", f"process-global {callee}()")
        return None
    if callee.startswith("numpy.random."):
        attr = callee.split("numpy.random.", 1)[1]
        if attr in _NUMPY_SEEDED_FACTORIES:
            if not _seed_argument_ok(call):
                return ("unseeded RNG", f"{callee}() without a derived seed")
            return None
        return ("unseeded RNG", f"process-global {callee}()")
    if callee in _FS_CALLS or callee.startswith(_FS_PREFIXES):
        return ("filesystem", f"{callee}()")
    if callee in _ENV_CALLS:
        return ("environment", f"{callee}()")
    return None


@deep_rule(
    "DET010",
    "no call path from a pure root reaches wall-clock/RNG/fs/env access",
)
def det010_transitive_purity(
    index: ProgramIndex, config: LintConfig
) -> Iterable[Finding]:
    # One BFS per root (rather than one merged walk) so that every
    # root's chain to a shared callee survives: a call-site noqa on one
    # root's edge must not hide the chain arriving from another root.
    reached: Dict[str, List[Tuple[str, ...]]] = {}
    for root in config.pure_roots:
        chains = index.reachable_chains(
            [root], stop=lambda fn: _is_boundary(fn, config)
        )
        for qualname, chain in chains.items():
            reached.setdefault(qualname, []).append(chain)
    for qualname in sorted(reached):
        fn = index.functions[qualname]
        chains_here = reached[qualname]
        # Boundary functions are where telemetry legitimately reads the
        # clock; their bodies are outside the purity contract (unless
        # the boundary is itself a configured root).
        if _is_boundary(fn, config) and not any(
            len(chain) == 1 for chain in chains_here
        ):
            continue
        viable = [
            chain
            for chain in chains_here
            if not _first_hop_suppressed(index, chain, "DET010")
        ]
        if not viable:
            continue
        chain = viable[0]
        for call in fn.calls:
            if call.callee is None:
                continue
            impure = _classify_impure(call.callee, call.node)
            if impure is None:
                continue
            category, detail = impure
            rendered = " -> ".join(_display(q) for q in chain)
            yield _finding(
                fn,
                call.node,
                "DET010",
                f"impure {category} access {detail} reachable from pure "
                f"root {_display(chain[0])} via {rendered}",
            )


def _first_hop_suppressed(
    index: ProgramIndex, chain: Tuple[str, ...], rule_id: str
) -> bool:
    """Whether a root-side call-site noqa covers this chain's first hop."""
    if len(chain) < 2:
        return False
    root = index.functions[chain[0]]
    suppressions = index.module_of(root).suppressions
    for call in root.calls:
        if chain[1] not in call.targets:
            continue
        for line in range(call.line, call.end_line + 1):
            if rule_id in suppressions.get(line, ()):
                return True
    return False


# ---------------------------------------------------------------------------
# RACE001/RACE002 — lock-discipline inference

_LOCK_CONSTRUCTORS = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "multiprocessing.Lock": "lock",
    "multiprocessing.RLock": "rlock",
}

# Calls on an attribute's value that mutate it in place.
_MUTATOR_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "sort",
    "update",
}

_INIT_METHODS = {"__init__", "__new__", "__post_init__"}


@dataclass
class _Mutation:
    attr: str
    node: ast.AST
    held: FrozenSet[str]


@dataclass
class _HeldCall:
    call: CallSite
    held: FrozenSet[str]


@dataclass
class _FunctionLockFacts:
    """Per-function lexical lock facts feeding the module analysis."""

    fn: FunctionInfo
    class_qual: Optional[str]
    mutations: List[_Mutation] = field(default_factory=list)
    calls: List[_HeldCall] = field(default_factory=list)
    acquires: Set[str] = field(default_factory=set)  # lexical acquisitions


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``X`` (one level only)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutated_self_attr(target: ast.AST) -> Optional[str]:
    """The ``self`` attribute a store-target mutates, if any."""
    attr = _self_attr(target)
    if attr is not None:
        return attr
    if isinstance(target, ast.Subscript):
        return _self_attr(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            found = _mutated_self_attr(elt)
            if found is not None:
                return found
    return None


def _class_locks(
    index: ProgramIndex, cls: ClassInfo
) -> Dict[str, str]:
    """Lock attributes of a class: attr name -> 'lock' | 'rlock'."""
    locks: Dict[str, str] = {}
    for qualname in cls.methods.values():
        fn = index.functions.get(qualname)
        if fn is None:
            continue
        aliases = index.module_of(fn).aliases
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            from .program import _canonical  # local: avoid public surface

            callee = _canonical(node.value.func, aliases)
            kind = _LOCK_CONSTRUCTORS.get(callee or "")
            if kind is None:
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    locks[attr] = kind
    return locks


def _collect_lock_facts(
    index: ProgramIndex,
    fn: FunctionInfo,
    lock_tokens: Dict[str, str],
) -> _FunctionLockFacts:
    """Walk one function, tracking which locks are lexically held.

    ``lock_tokens`` maps ``self`` attribute names to global lock tokens
    (``Class.qualname.attr``) for the function's own class.
    """
    cls = index.class_of(fn)
    facts = _FunctionLockFacts(
        fn=fn, class_qual=cls.qualname if cls else None
    )
    calls_by_id = {id(c.node): c for c in fn.calls}

    def walk(node: ast.AST, held: FrozenSet[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: Set[str] = set()
            for item in node.items:
                walk_expr(item.context_expr, held)
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in lock_tokens:
                    acquired.add(lock_tokens[attr])
            facts.acquires.update(acquired)
            inner = held | frozenset(acquired)
            for stmt in node.body:
                walk(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs: body runs when called, not here; treat its
            # lock context as unknown (empty) rather than inheriting.
            for stmt in node.body:
                walk(stmt, frozenset())
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                attr = _mutated_self_attr(target)
                if attr is not None:
                    facts.mutations.append(
                        _Mutation(attr=attr, node=node, held=held)
                    )
            value = getattr(node, "value", None)
            if value is not None:
                walk_expr(value, held)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                walk_expr(child, held)
            else:
                walk(child, held)

    def walk_expr(node: ast.AST, held: FrozenSet[str]) -> None:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            site = calls_by_id.get(id(sub))
            if site is not None:
                facts.calls.append(_HeldCall(call=site, held=held))
            func = sub.func
            if isinstance(func, ast.Attribute):
                owner = _self_attr(func.value)
                if owner is not None:
                    if (
                        func.attr == "acquire"
                        and owner in lock_tokens
                    ):
                        facts.acquires.add(lock_tokens[owner])
                    elif func.attr in _MUTATOR_METHODS:
                        facts.mutations.append(
                            _Mutation(attr=owner, node=sub, held=held)
                        )

    for stmt in fn.node.body:  # type: ignore[attr-defined]
        walk(stmt, frozenset())
    return facts


def _must_hold_fixpoint(
    facts_by_fn: Dict[str, _FunctionLockFacts],
) -> Dict[str, FrozenSet[str]]:
    """Locks provably held on *every* call path into each function.

    Standard must-analysis: functions with no known project callers
    start (and stay) at the empty set — they may be entered lock-free;
    called functions start at TOP (None) and meet, over every call
    site, the locks lexically held there plus the caller's own
    must-held set.
    """
    callers: Dict[str, List[Tuple[str, FrozenSet[str]]]] = {}
    for facts in facts_by_fn.values():
        for held_call in facts.calls:
            for target in held_call.call.targets:
                if target in facts_by_fn:
                    callers.setdefault(target, []).append(
                        (facts.fn.qualname, held_call.held)
                    )
    result: Dict[str, Optional[FrozenSet[str]]] = {
        name: (None if name in callers else frozenset())
        for name in facts_by_fn
    }
    changed = True
    iterations = 0
    while changed and iterations < 50:
        changed = False
        iterations += 1
        for name, edges in callers.items():
            met: Optional[FrozenSet[str]] = None
            for caller, held in edges:
                caller_held = result.get(caller) or frozenset()
                path_held = held | caller_held
                met = path_held if met is None else (met & path_held)
            if met is not None and met != result[name]:
                result[name] = met
                changed = True
    return {
        name: (value or frozenset()) for name, value in result.items()
    }


def _module_lock_tokens(
    index: ProgramIndex,
) -> Tuple[Dict[str, Dict[str, str]], Dict[str, str]]:
    """Per-class lock maps and the token->kind table.

    Returns ``({class qualname: {attr: token}}, {token: kind})``.
    """
    per_class: Dict[str, Dict[str, str]] = {}
    kinds: Dict[str, str] = {}
    for cls in index.classes.values():
        locks = _class_locks(index, cls)
        if not locks:
            continue
        tokens = {
            attr: f"{cls.qualname}.{attr}" for attr in locks
        }
        per_class[cls.qualname] = tokens
        for attr, kind in locks.items():
            kinds[tokens[attr]] = kind
    return per_class, kinds


def _collect_all_lock_facts(
    index: ProgramIndex,
    per_class: Dict[str, Dict[str, str]],
) -> Dict[str, _FunctionLockFacts]:
    facts: Dict[str, _FunctionLockFacts] = {}
    for fn in index.functions.values():
        cls = index.class_of(fn)
        tokens = per_class.get(cls.qualname, {}) if cls else {}
        facts[fn.qualname] = _collect_lock_facts(index, fn, tokens)
    return facts


@deep_rule(
    "RACE001",
    "attributes guarded by an inferred lock never mutated outside it",
)
def race001_guard_discipline(
    index: ProgramIndex, config: LintConfig
) -> Iterable[Finding]:
    per_class, _kinds = _module_lock_tokens(index)
    if not per_class:
        return
    facts_by_fn = _collect_all_lock_facts(index, per_class)
    must_hold = _must_hold_fixpoint(facts_by_fn)

    for class_qual, tokens in sorted(per_class.items()):
        cls = index.classes[class_qual]
        lock_attr_names = set(tokens)
        # attr -> {lock token} observed guarding a mutation; attr ->
        # [(facts, mutation, effective held)] for the audit pass.
        guarded_by: Dict[str, Set[str]] = {}
        mutations: List[Tuple[_FunctionLockFacts, _Mutation, FrozenSet[str]]] = []
        for qualname in cls.methods.values():
            facts = facts_by_fn.get(qualname)
            if facts is None:
                continue
            effective_base = must_hold.get(qualname, frozenset())
            for mut in facts.mutations:
                if mut.attr in lock_attr_names:
                    continue  # assigning the lock itself
                effective = mut.held | effective_base
                mutations.append((facts, mut, effective))
                held_own = {
                    t for t in effective if t in set(tokens.values())
                }
                if held_own and facts.fn.name not in _INIT_METHODS:
                    guarded_by.setdefault(mut.attr, set()).update(
                        held_own
                    )
        for facts, mut, effective in mutations:
            guards = guarded_by.get(mut.attr, set())
            if len(guards) != 1:
                # Never locked (no inferred guard) or ambiguously
                # locked (two different locks: a design smell, but not
                # this rule's claim).
                continue
            (guard,) = guards
            if guard in effective:
                continue
            if facts.fn.name in _INIT_METHODS:
                continue  # construction happens-before publication
            lock_display = guard.rsplit(".", 1)[-1]
            yield _finding(
                facts.fn,
                mut.node,
                "RACE001",
                f"attribute self.{mut.attr} of {cls.name} is mutated "
                f"under self.{lock_display} elsewhere but mutated here "
                "without holding it (lexically or on every call path)",
            )


@deep_rule(
    "RACE002",
    "no call under a held lock into a function that acquires locks",
)
def race002_nested_acquisition(
    index: ProgramIndex, config: LintConfig
) -> Iterable[Finding]:
    per_class, kinds = _module_lock_tokens(index)
    if not per_class:
        return
    facts_by_fn = _collect_all_lock_facts(index, per_class)

    for qualname in sorted(facts_by_fn):
        facts = facts_by_fn[qualname]
        for held_call in facts.calls:
            if not held_call.held:
                continue
            for target in held_call.call.targets:
                target_facts = facts_by_fn.get(target)
                if target_facts is None or not target_facts.acquires:
                    continue
                for acquired in sorted(target_facts.acquires):
                    if acquired in held_call.held:
                        if kinds.get(acquired) == "rlock":
                            continue  # re-entrant by design
                        message = (
                            f"{_display(target)} re-acquires "
                            f"{acquired.rsplit('.', 1)[-1]} already held "
                            f"at this call site (non-reentrant Lock: "
                            "self-deadlock)"
                        )
                    else:
                        message = (
                            f"call into {_display(target)} acquires "
                            f"{acquired.rsplit('.', 1)[-1]} while "
                            f"{', '.join(t.rsplit('.', 1)[-1] for t in sorted(held_call.held))} "
                            "is held (lock-ordering hazard)"
                        )
                    yield _finding(
                        facts.fn,
                        held_call.call.node,
                        "RACE002",
                        message,
                    )


# ---------------------------------------------------------------------------
# PERF001/PERF002 — hot-loop hygiene in root-reachable functions


def _hot_functions(
    index: ProgramIndex, config: LintConfig
) -> List[FunctionInfo]:
    chains = index.reachable_chains(
        list(config.pure_roots),
        stop=lambda fn: _is_boundary(fn, config),
    )
    out = []
    for qualname in sorted(chains):
        fn = index.functions[qualname]
        if _is_boundary(fn, config) and len(chains[qualname]) > 1:
            continue
        out.append(fn)
    return out


def _loops_of(fn: FunctionInfo) -> List[ast.AST]:
    return [
        node
        for node in ast.walk(fn.node)
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While))
    ]


def _loop_body_nodes(loop: ast.AST) -> Iterable[ast.AST]:
    for stmt in getattr(loop, "body", []):
        yield from ast.walk(stmt)


def _names_in(node: ast.AST) -> Set[str]:
    return {
        sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)
    }


@deep_rule(
    "PERF001",
    "no per-iteration allocation patterns in root-reachable loops",
)
def perf001_loop_allocation(
    index: ProgramIndex, config: LintConfig
) -> Iterable[Finding]:
    for fn in _hot_functions(index, config):
        aliases = index.module_of(fn).aliases
        from .program import _canonical

        for loop in _loops_of(fn):
            inner_loops = [
                n for n in _loop_body_nodes(loop)
                if isinstance(n, (ast.For, ast.AsyncFor, ast.While))
            ]
            skip = {
                id(n)
                for inner in inner_loops
                for n in ast.walk(inner)
                if n is not inner
            }
            for node in _loop_body_nodes(loop):
                if id(node) in skip:
                    continue  # reported against the innermost loop
                if isinstance(node, ast.Call):
                    callee = _canonical(node.func, aliases)
                    if callee in ("dataclasses.replace", "copy.deepcopy"):
                        yield _finding(
                            fn,
                            node,
                            "PERF001",
                            f"{callee}() allocates a fresh object every "
                            f"iteration of a hot loop in "
                            f"{_display(fn.qualname)}; restructure to "
                            "mutate in place or batch outside the loop",
                        )
                elif isinstance(node, (ast.Lambda, ast.FunctionDef)):
                    yield _finding(
                        fn,
                        node,
                        "PERF001",
                        "closure created per iteration of a hot loop in "
                        f"{_display(fn.qualname)}; define it once "
                        "outside the loop",
                    )
                elif isinstance(node, ast.Assign):
                    value = node.value
                    if not isinstance(
                        value,
                        (ast.ListComp, ast.SetComp, ast.DictComp),
                    ):
                        continue
                    target_names = set()
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            target_names.add(target.id)
                    iter_names: Set[str] = set()
                    for gen in value.generators:
                        iter_names |= _names_in(gen.iter)
                    rebuilt = target_names & iter_names
                    if rebuilt:
                        name = sorted(rebuilt)[0]
                        yield _finding(
                            fn,
                            node,
                            "PERF001",
                            f"{name!r} is rebuilt from itself by a "
                            "comprehension every iteration of a hot "
                            f"loop in {_display(fn.qualname)}; compact "
                            "amortized (in place, past a threshold) "
                            "instead",
                        )


def _chain_text(node: ast.Attribute) -> Optional[Tuple[str, str, int]]:
    """``(full chain text, base name, attribute depth)`` for a chain."""
    parts: List[str] = []
    cur: ast.AST = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    parts.reverse()
    return ".".join(parts), parts[0], len(parts) - 1


@deep_rule(
    "PERF002",
    "no repeated deep attribute chains inside root-reachable loops",
)
def perf002_repeated_chains(
    index: ProgramIndex, config: LintConfig
) -> Iterable[Finding]:
    for fn in _hot_functions(index, config):
        for loop in _loops_of(fn):
            body_nodes = list(_loop_body_nodes(loop))
            attr_parents: Set[int] = set()
            call_funcs: Set[int] = set()
            rebound: Set[str] = set()
            attr_stores: Set[str] = set()
            for node in body_nodes:
                if isinstance(node, ast.Attribute):
                    if isinstance(node.value, ast.Attribute):
                        attr_parents.add(id(node.value))
                elif isinstance(node, ast.Call):
                    call_funcs.add(id(node.func))
                elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Name):
                            rebound.add(target.id)
                        elif isinstance(target, ast.Attribute):
                            text = _chain_text(target)
                            if text is not None:
                                attr_stores.add(text[0])
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    rebound |= _names_in(node.target)
            # Maximal Load-context chains with >= 2 attribute links,
            # excluding chains used directly as a call's function (the
            # bound method itself is not hoistable data).
            occurrences: Dict[str, List[ast.Attribute]] = {}
            for node in body_nodes:
                if not isinstance(node, ast.Attribute):
                    continue
                if id(node) in attr_parents or id(node) in call_funcs:
                    continue
                if not isinstance(node.ctx, ast.Load):
                    continue
                info = _chain_text(node)
                if info is None:
                    continue
                text, base, depth = info
                if depth < 2 or base in rebound:
                    continue
                # A chain whose prefix is written in this loop is not
                # loop-invariant.
                if any(text.startswith(s) for s in attr_stores):
                    continue
                occurrences.setdefault(text, []).append(node)
            for text in sorted(occurrences):
                nodes = occurrences[text]
                if len(nodes) < 2:
                    continue
                first = min(nodes, key=lambda n: (n.lineno, n.col_offset))
                yield _finding(
                    fn,
                    first,
                    "PERF002",
                    f"attribute chain {text} read {len(nodes)} times in "
                    f"one hot-loop iteration in {_display(fn.qualname)}; "
                    "hoist it into a local",
                )


# ---------------------------------------------------------------------------
# driver


def run_deep(
    paths: Sequence[str],
    root: Optional[str] = None,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[DeepRule]] = None,
    report_only: Optional[Set[str]] = None,
) -> LintReport:
    """Run every deep rule over the program rooted at ``paths``.

    ``report_only`` (repo-relative paths) restricts *reporting* — the
    program index still spans all of ``paths`` so cross-module facts
    stay sound — used by ``lint --deep --changed``.
    """
    if config is None:
        config = load_config(root)
    index = build_program(paths, root=root)
    report = LintReport(files_checked=len(index.modules))
    report.parse_errors.extend(index.parse_errors)
    selected = list(DEEP_RULES.values()) if rules is None else list(rules)
    for deep in selected:
        for finding in deep.fn(index, config):
            if report_only is not None and finding.path not in report_only:
                continue
            module = index.modules.get(finding.path)
            suppressions = module.suppressions if module else {}
            if is_suppressed(finding, suppressions):
                report.suppressed += 1
                continue
            report.findings.append(finding)
    report.findings.sort()
    return report
