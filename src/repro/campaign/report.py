"""Query and comparison layer over campaign result stores.

Three read-only views of a campaign directory:

* :func:`campaign_status` — grid completion (done/pending per run);
* :func:`campaign_report` — one row per finished run with its sweep
  overrides and headline metrics, plus simple per-metric aggregates;
* :func:`campaign_diff` — pairwise regression check of two campaigns,
  delegating metric flattening and tolerance logic to
  :mod:`repro.obs.regress` (wall-clock manifest fields are volatile
  there and never gate a comparison).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..obs.regress import REGRESS_SCHEMA_VERSION, Tolerance, compare_metrics, metrics_from_result
from .store import CampaignStore

__all__ = ["campaign_status", "campaign_report", "campaign_diff"]

# Headline metrics promoted into report rows when present.
_HEADLINE_KEYS = ("offered", "delivered", "prr")


def campaign_status(out_dir: str) -> Dict[str, Any]:
    """Completion state of the campaign at ``out_dir``."""
    return CampaignStore(out_dir).status()


def _headline(result: Mapping[str, Any]) -> Dict[str, Any]:
    return {k: result[k] for k in _HEADLINE_KEYS if k in result}


def campaign_report(out_dir: str) -> Dict[str, Any]:
    """Per-run rows plus aggregates for every finished run."""
    store = CampaignStore(out_dir)
    status = store.status()
    rows: List[Dict[str, Any]] = []
    for record in store.results():
        result = record.get("result", {})
        rows.append(
            {
                "run_id": record["run_id"],
                "index": record.get("index"),
                "seed": record.get("seed"),
                "overrides": record.get("overrides", {}),
                "kind": result.get("kind"),
                **_headline(result),
                "wall_time_s": (record.get("manifest") or {}).get("wall_time_s"),
            }
        )
    aggregates: Dict[str, Dict[str, float]] = {}
    for key in _HEADLINE_KEYS:
        values = [float(row[key]) for row in rows if isinstance(row.get(key), (int, float))]
        if values:
            aggregates[key] = {
                "min": min(values),
                "max": max(values),
                "mean": sum(values) / len(values),
            }
    return {
        "name": status["name"],
        "spec_digest": status["spec_digest"],
        "total": status["total"],
        "completed": status["completed"],
        "pending": status["pending"],
        "rows": rows,
        "aggregates": aggregates,
    }


def _comparable(record: Mapping[str, Any]) -> Dict[str, float]:
    # Flatten only the deterministic result payload; the manifest is
    # wall-clock-bearing by design and must never gate a diff.
    return metrics_from_result(record.get("result", {}))


def campaign_diff(
    dir_a: str,
    dir_b: str,
    default: Optional[Tolerance] = None,
) -> Dict[str, Any]:
    """Compare two campaigns run-by-run; the ``campaign diff`` payload.

    Runs are paired by ``run_id`` when the two campaigns share a spec
    digest (the common case: same spec, different code), and by grid
    ``index`` otherwise (an edited spec re-hashes every run).  A run
    finished on only one side is a failing check.
    """
    store_a, store_b = CampaignStore(dir_a), CampaignStore(dir_b)
    index_a, index_b = store_a.require_index(), store_b.require_index()
    by_run_id = index_a.get("spec_digest") == index_b.get("spec_digest")
    key = (lambda r: r["run_id"]) if by_run_id else (lambda r: r.get("index"))
    recs_a = {key(r): r for r in store_a.results()}
    recs_b = {key(r): r for r in store_b.results()}

    runs: List[Dict[str, Any]] = []
    regressions = 0
    for pair_key in sorted(set(recs_a) | set(recs_b), key=str):
        rec_a, rec_b = recs_a.get(pair_key), recs_b.get(pair_key)
        if rec_a is None or rec_b is None:
            runs.append(
                {
                    "key": pair_key,
                    "status": "fail",
                    "reason": "run finished in only one campaign",
                    "in_a": rec_a is not None,
                    "in_b": rec_b is not None,
                }
            )
            regressions += 1
            continue
        checks = compare_metrics(
            _comparable(rec_a), _comparable(rec_b), default=default
        )
        failing = [c for c in checks if not c["ok"]]
        regressions += len(failing)
        runs.append(
            {
                "key": pair_key,
                "status": "fail" if failing else "pass",
                "metrics_compared": len(checks),
                "regressions": failing,
            }
        )
    return {
        "schema": REGRESS_SCHEMA_VERSION,
        "paired_by": "run_id" if by_run_id else "index",
        "a": dir_a,
        "b": dir_b,
        "status": "fail" if regressions else "pass",
        "runs": runs,
        "total_regressions": regressions,
    }
