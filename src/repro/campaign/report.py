"""Query and comparison layer over campaign result stores.

Three read-only views of a campaign directory:

* :func:`campaign_status` — grid completion (done/pending per run);
* :func:`campaign_report` — one row per finished run with its sweep
  overrides and headline metrics, plus simple per-metric aggregates;
* :func:`campaign_diff` — pairwise regression check of two campaigns,
  delegating metric flattening and tolerance logic to
  :mod:`repro.obs.regress` (wall-clock manifest fields are volatile
  there and never gate a comparison).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..obs.manifest import wall_now_s
from ..obs.regress import REGRESS_SCHEMA_VERSION, Tolerance, compare_metrics, metrics_from_result
from .store import HEARTBEAT_STALE_S, CampaignStore

__all__ = [
    "campaign_status",
    "campaign_report",
    "campaign_diff",
    "fleet_status",
]

# Headline metrics promoted into report rows when present.
_HEADLINE_KEYS = ("offered", "delivered", "prr")


def campaign_status(out_dir: str) -> Dict[str, Any]:
    """Completion state of the campaign at ``out_dir``."""
    return CampaignStore(out_dir).status()


def _headline(result: Mapping[str, Any]) -> Dict[str, Any]:
    return {k: result[k] for k in _HEADLINE_KEYS if k in result}


def fleet_status(out_dir: str) -> Dict[str, Any]:
    """Live fleet view: grid completion plus per-worker heartbeats.

    Heartbeats are written by campaign workers after every finished run
    (see :mod:`repro.campaign.runner`); a heartbeat older than
    ``HEARTBEAT_STALE_S`` marks its worker stale.  The fleet ETA scales
    the mean per-run busy time by the pending count over the active
    worker count.  Everything here is wall-clock telemetry — it never
    feeds results or comparisons.
    """
    store = CampaignStore(out_dir)
    status = store.status()
    now = wall_now_s()
    workers: List[Dict[str, Any]] = []
    runs_done = 0
    busy_s = 0.0
    for hb in store.heartbeats():
        age_s = max(0.0, now - float(hb.get("updated_wall_s") or now))
        runs_done += int(hb.get("runs_done") or 0)
        busy_s += float(hb.get("busy_wall_s") or 0.0)
        workers.append(
            {
                "worker": hb.get("worker"),
                "pid": hb.get("pid"),
                "runs_done": hb.get("runs_done", 0),
                "last_run_id": hb.get("last_run_id"),
                "last_wall_s": hb.get("last_wall_s"),
                "last_eps": hb.get("last_eps"),
                "age_s": age_s,
                "stale": age_s > HEARTBEAT_STALE_S,
            }
        )
    active = sum(1 for w in workers if not w["stale"])
    mean_run_s = busy_s / runs_done if runs_done else None
    eta_s: Optional[float] = None
    if mean_run_s is not None and active > 0:
        eta_s = status["pending"] * mean_run_s / active
    return {
        **{
            k: status[k]
            for k in ("name", "spec_digest", "total", "completed", "pending")
        },
        "workers": workers,
        "fleet": {
            "workers": len(workers),
            "active": active,
            "runs_done": runs_done,
            "busy_wall_s": busy_s,
            "mean_run_wall_s": mean_run_s,
            "eta_s": eta_s,
        },
    }


def campaign_report(out_dir: str) -> Dict[str, Any]:
    """Per-run rows plus aggregates for every finished run."""
    store = CampaignStore(out_dir)
    status = store.status()
    rows: List[Dict[str, Any]] = []
    perf_events = 0
    perf_wall_s = 0.0
    run_eps: List[float] = []
    for record in store.results():
        result = record.get("result", {})
        row = {
            "run_id": record["run_id"],
            "index": record.get("index"),
            "seed": record.get("seed"),
            "overrides": record.get("overrides", {}),
            "kind": result.get("kind"),
            **_headline(result),
            "wall_time_s": (record.get("manifest") or {}).get("wall_time_s"),
        }
        perf = record.get("perf") or {}
        wall = perf.get("wall") or {}
        if wall.get("events_per_s") is not None:
            # "_wall" suffix keeps throughput out of regress comparisons
            # (volatile-key filter), like wall_time_s above.
            row["eps_wall"] = wall["events_per_s"]
            run_eps.append(float(wall["events_per_s"]))
            perf_events += int((perf.get("deterministic") or {}).get("events") or 0)
            perf_wall_s += float(wall.get("total_s") or 0.0)
        rows.append(row)
    aggregates: Dict[str, Dict[str, float]] = {}
    for key in _HEADLINE_KEYS:
        values = [float(row[key]) for row in rows if isinstance(row.get(key), (int, float))]
        if values:
            aggregates[key] = {
                "min": min(values),
                "max": max(values),
                "mean": sum(values) / len(values),
            }
    throughput: Optional[Dict[str, float]] = None
    if run_eps:
        throughput = {
            "runs": float(len(run_eps)),
            "events": float(perf_events),
            "busy_s": perf_wall_s,
            "events_per_s": perf_events / perf_wall_s if perf_wall_s else 0.0,
            "min_run_eps": min(run_eps),
            "max_run_eps": max(run_eps),
            "mean_run_eps": sum(run_eps) / len(run_eps),
        }
    return {
        "name": status["name"],
        "spec_digest": status["spec_digest"],
        "total": status["total"],
        "completed": status["completed"],
        "pending": status["pending"],
        "trace_shards": status.get("trace_shards", 0),
        "rows": rows,
        "aggregates": aggregates,
        "throughput_wall": throughput,
    }


def _comparable(record: Mapping[str, Any]) -> Dict[str, float]:
    # Flatten only the deterministic result payload; the manifest is
    # wall-clock-bearing by design and must never gate a diff.
    return metrics_from_result(record.get("result", {}))


def campaign_diff(
    dir_a: str,
    dir_b: str,
    default: Optional[Tolerance] = None,
) -> Dict[str, Any]:
    """Compare two campaigns run-by-run; the ``campaign diff`` payload.

    Runs are paired by ``run_id`` when the two campaigns share a spec
    digest (the common case: same spec, different code), and by grid
    ``index`` otherwise (an edited spec re-hashes every run).  A run
    finished on only one side is a failing check.
    """
    store_a, store_b = CampaignStore(dir_a), CampaignStore(dir_b)
    index_a, index_b = store_a.require_index(), store_b.require_index()
    by_run_id = index_a.get("spec_digest") == index_b.get("spec_digest")
    key = (lambda r: r["run_id"]) if by_run_id else (lambda r: r.get("index"))
    recs_a = {key(r): r for r in store_a.results()}
    recs_b = {key(r): r for r in store_b.results()}

    runs: List[Dict[str, Any]] = []
    regressions = 0
    for pair_key in sorted(set(recs_a) | set(recs_b), key=str):
        rec_a, rec_b = recs_a.get(pair_key), recs_b.get(pair_key)
        if rec_a is None or rec_b is None:
            runs.append(
                {
                    "key": pair_key,
                    "status": "fail",
                    "reason": "run finished in only one campaign",
                    "in_a": rec_a is not None,
                    "in_b": rec_b is not None,
                }
            )
            regressions += 1
            continue
        checks = compare_metrics(
            _comparable(rec_a), _comparable(rec_b), default=default
        )
        failing = [c for c in checks if not c["ok"]]
        regressions += len(failing)
        runs.append(
            {
                "key": pair_key,
                "status": "fail" if failing else "pass",
                "metrics_compared": len(checks),
                "regressions": failing,
            }
        )
    return {
        "schema": REGRESS_SCHEMA_VERSION,
        "paired_by": "run_id" if by_run_id else "index",
        "a": dir_a,
        "b": dir_b,
        "status": "fail" if regressions else "pass",
        "runs": runs,
        "total_regressions": regressions,
    }
