"""Parallel campaign execution with crash-tolerant resume.

The runner expands a scenario spec into its seeded run grid, skips
every run whose result already sits in the store (resume), and executes
the rest — inline for ``jobs=1``, on a :class:`ProcessPoolExecutor`
otherwise.  Each run's seed is embedded in its
:class:`~repro.scenarios.spec.RunConfig` *before* any worker starts,
so results are bit-identical at any parallelism: the pool only decides
*when* a run executes, never *what* it computes.

Wall-clock readings are confined to the run manifests (``wall_time_s``,
``started_at`` via :mod:`repro.obs.manifest`); comparisons scrub them.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, List, Optional

from ..obs.manifest import Stopwatch, build_manifest
from ..scenarios.compile import execute_run
from ..scenarios.spec import RunConfig, ScenarioSpec
from .store import CampaignStore

__all__ = ["execute_one", "run_campaign"]

ProgressFn = Callable[[str], None]


def execute_one(run: RunConfig, experiment: str = "campaign") -> Dict[str, Any]:
    """Execute one run and wrap it into a self-contained store record.

    Top-level (picklable) on purpose: this is the process-pool worker.
    """
    watch = Stopwatch()
    result = execute_run(run)
    manifest = build_manifest(
        experiment=experiment,
        seed=run.seed,
        config=run.config,
        wall_time_s=watch.elapsed_s(),
        extra={"run_id": run.run_id, "run_index": run.index},
    )
    return {
        "run_id": run.run_id,
        "index": run.index,
        "seed": run.seed,
        "overrides": run.overrides,
        "result": result,
        "manifest": manifest,
    }


def run_campaign(
    spec: ScenarioSpec,
    out_dir: str,
    jobs: int = 1,
    resume: bool = True,
    progress: Optional[ProgressFn] = None,
) -> Dict[str, Any]:
    """Run every pending run of ``spec`` into the store at ``out_dir``.

    Args:
        spec: Parsed scenario spec (its sweep defines the run grid).
        out_dir: Campaign directory (created on first use; re-use
            requires the same spec digest).
        jobs: Worker processes; ``1`` executes inline in this process.
        resume: Skip runs whose results already parse on disk.  With
            ``resume=False`` every run re-executes and overwrites.
        progress: Optional callback for one-line progress messages.

    Returns:
        Summary dict: totals, the runs executed/skipped, store paths.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    say = progress or (lambda _msg: None)
    store = CampaignStore(out_dir)
    store.initialize(spec)
    runs = spec.runs()
    done = store.completed_run_ids() if resume else set()
    pending = [r for r in runs if r.run_id not in done]
    say(
        f"campaign {spec.name}: {len(runs)} runs "
        f"({len(runs) - len(pending)} already done, {len(pending)} to go, "
        f"jobs={jobs})"
    )

    executed: List[str] = []
    failures: List[Dict[str, Any]] = []
    if jobs == 1 or len(pending) <= 1:
        for run in pending:
            _finish(store, spec, run, failures, executed, say)
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(execute_one, run, spec.name): run for run in pending
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for fut in finished:
                    run = futures[fut]
                    try:
                        record = fut.result()
                    except Exception as exc:  # noqa: BLE001 - reported per run
                        failures.append({"run_id": run.run_id, "error": str(exc)})
                        say(f"run {run.run_id} FAILED: {exc}")
                        continue
                    store.write_result(record)
                    executed.append(run.run_id)
                    say(f"run {run.run_id} done ({len(executed)}/{len(pending)})")

    return {
        "name": spec.name,
        "spec_digest": spec.digest,
        "out_dir": out_dir,
        "total": len(runs),
        "skipped": len(runs) - len(pending),
        "executed": sorted(executed),
        "failed": failures,
        "completed": len(store.completed_run_ids()),
    }


def _finish(
    store: CampaignStore,
    spec: ScenarioSpec,
    run: RunConfig,
    failures: List[Dict[str, Any]],
    executed: List[str],
    say: ProgressFn,
) -> None:
    try:
        record = execute_one(run, spec.name)
    except Exception as exc:  # noqa: BLE001 - reported per run
        failures.append({"run_id": run.run_id, "error": str(exc)})
        say(f"run {run.run_id} FAILED: {exc}")
        return
    store.write_result(record)
    executed.append(run.run_id)
    say(f"run {run.run_id} done")
