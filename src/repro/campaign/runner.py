"""Parallel campaign execution with crash-tolerant resume.

The runner expands a scenario spec into its seeded run grid, skips
every run whose result already sits in the store (resume), and executes
the rest — inline for ``jobs=1``, on a :class:`ProcessPoolExecutor`
otherwise.  Each run's seed is embedded in its
:class:`~repro.scenarios.spec.RunConfig` *before* any worker starts,
so results are bit-identical at any parallelism: the pool only decides
*when* a run executes, never *what* it computes.

Fleet telemetry: every worker carries a per-run
:class:`~repro.obs.perf.PerfProbe` (sampled timings, exact phase
counts) whose report lands under the record's ``perf`` key — the
deterministic half is identical at any parallelism, the ``wall`` half
is scrubbed by every comparison layer — and, when the campaign store is
reachable, writes a heartbeat file after each run so ``campaign status
--live`` and ``watch --campaign`` can show fleet progress without
touching the result files.

Wall-clock readings are confined to the run manifests, the ``perf``
``wall`` section, and the heartbeats (all via :mod:`repro.obs.manifest`
helpers); comparisons scrub them.

Causal tracing (``trace=True``): the campaign mints one
:class:`~repro.obs.causal.TraceContext` root from its name and spec
digest; every worker derives a child span for its run, records the run
under a full observability session (with a flight recorder pointed at
the trace directory), and writes a per-run shard to
``<out>/traces/<run_id>.jsonl``.  Contexts and shard contents are
derived purely from the spec, so the shard set is byte-identical at any
parallelism and ``repro.tools trace merge`` reassembles one
deterministic campaign-wide trace.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, List, Optional

from ..obs import observe
from ..obs import runtime as _obs_runtime
from ..obs.causal import TraceContext
from ..obs.flight import FlightRecorder
from ..obs.manifest import Stopwatch, build_manifest, utc_now_iso, wall_now_s
from ..obs.perf import PerfProbe, maybe_attach
from ..scenarios.compile import execute_run
from ..scenarios.spec import RunConfig, ScenarioSpec
from .store import CampaignStore

__all__ = ["execute_one", "run_campaign", "progress_line"]

ProgressFn = Callable[[str], None]

# Per-run phase timings are sampled 1-in-N in campaign workers: exact
# counters, ~zero timing overhead (the profile CLI uses 1 for full
# timing fidelity instead).
WORKER_SAMPLE_EVERY = 32

# Per-worker-process tally.  Pool workers persist across tasks, so this
# module state accumulates runs-completed and busy time per worker and
# rides along in every heartbeat.
_WORKER_STATE: Dict[str, Any] = {"runs_done": 0, "busy_wall_s": 0.0}


def _emit_heartbeat(
    store: CampaignStore,
    campaign: str,
    run: RunConfig,
    wall_s: float,
    events: int,
) -> None:
    _WORKER_STATE["runs_done"] += 1
    _WORKER_STATE["busy_wall_s"] += wall_s
    record = {
        "schema": 1,
        "worker": f"w{os.getpid()}",
        "pid": os.getpid(),
        "campaign": campaign,
        "runs_done": _WORKER_STATE["runs_done"],
        "busy_wall_s": _WORKER_STATE["busy_wall_s"],
        "last_run_id": run.run_id,
        "last_index": run.index,
        "last_wall_s": wall_s,
        "last_events": events,
        "last_eps": events / wall_s if wall_s > 0 else 0.0,
        "updated_at": utc_now_iso(),
        "updated_wall_s": wall_now_s(),
    }
    try:
        store.write_heartbeat(record)
    except OSError:
        pass  # telemetry only: never fail a run over a heartbeat


def _run_traced(
    run: RunConfig, store: CampaignStore, trace_root: Dict[str, Any]
) -> Any:
    """Execute ``run`` under a causal-tracing session; write its shard.

    The worker adopts a child span of the campaign root (derived from
    the run id — deterministic at any parallelism), records every sim
    and control-plane event, and keeps a flight recorder pointed at the
    trace directory so a crashing worker leaves a black-box dump next
    to the shards.  The shard is written atomically even when the run
    raises — a partial trace is exactly what the post-mortem needs.
    """
    root = TraceContext.from_wire(trace_root)
    if root is None:
        return execute_run(run)
    os.makedirs(store.traces_dir, exist_ok=True)
    flight = FlightRecorder(out_dir=store.traces_dir)
    manifest = {
        "experiment": root.run_id,
        "run_id": run.run_id,
        "run_index": run.index,
        "seed": run.seed,
    }
    with observe(
        trace=True, metrics=False, spans=False, flight=flight, manifest=manifest
    ) as session:
        assert session.recorder is not None
        session.recorder.set_context(root.child(run.run_id))
        try:
            result = execute_run(run)
        except Exception:
            flight.dump(reason="worker_error")
            store.write_trace_shard(
                run.run_id, session.recorder.to_jsonl(include_wall=False)
            )
            raise
        store.write_trace_shard(
            run.run_id, session.recorder.to_jsonl(include_wall=False)
        )
    return result


def execute_one(
    run: RunConfig,
    experiment: str = "campaign",
    out_dir: Optional[str] = None,
    trace_root: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Execute one run and wrap it into a self-contained store record.

    Top-level (picklable) on purpose: this is the process-pool worker.
    When ``out_dir`` names the campaign store, a heartbeat is written
    after the run so live status can show fleet progress.  The per-run
    perf report (``perf`` key: deterministic phase counts + wall-only
    throughput) is attached opportunistically — an outer probe (e.g.
    ``repro.tools profile`` around a whole campaign) takes precedence.
    With ``trace_root`` (the campaign root context's wire form) the run
    executes under a tracing session and leaves a shard in the store's
    trace directory — unless an observability session is already active
    in this process (sessions don't nest; the outer one wins).
    """
    watch = Stopwatch()
    probe = PerfProbe(sample_every=WORKER_SAMPLE_EVERY)
    traceable = (
        trace_root is not None
        and out_dir is not None
        and _obs_runtime.TRACE is None
        and _obs_runtime.METRICS is None
        and _obs_runtime.SPANS is None
        and _obs_runtime.HEALTH is None
        and _obs_runtime.FLIGHT is None
    )
    with maybe_attach(probe) as attached:
        if traceable:
            assert out_dir is not None and trace_root is not None
            result = _run_traced(run, CampaignStore(out_dir), trace_root)
        else:
            result = execute_run(run)
    wall_s = watch.elapsed_s()
    manifest = build_manifest(
        experiment=experiment,
        seed=run.seed,
        config=run.config,
        wall_time_s=wall_s,
        extra={"run_id": run.run_id, "run_index": run.index},
    )
    record = {
        "run_id": run.run_id,
        "index": run.index,
        "seed": run.seed,
        "overrides": run.overrides,
        "result": result,
        "manifest": manifest,
    }
    events = 0
    if attached is not None:
        record["perf"] = attached.report(total_wall_s=wall_s)
        events = attached.events
    if out_dir is not None:
        _emit_heartbeat(
            CampaignStore(out_dir), experiment, run, wall_s, events
        )
    return record


def progress_line(done: int, total: int, elapsed_s: float) -> str:
    """``3/10, 12.3 runs/min, ETA 34s`` — the live progress suffix."""
    if done <= 0 or elapsed_s <= 0:
        return f"{done}/{total}"
    rate_per_s = done / elapsed_s
    eta_s = (total - done) / rate_per_s
    if eta_s >= 90:
        eta = f"{eta_s / 60:.1f}min"
    else:
        eta = f"{eta_s:.0f}s"
    return f"{done}/{total}, {rate_per_s * 60:.1f} runs/min, ETA {eta}"


def run_campaign(
    spec: ScenarioSpec,
    out_dir: str,
    jobs: int = 1,
    resume: bool = True,
    progress: Optional[ProgressFn] = None,
    trace: bool = False,
) -> Dict[str, Any]:
    """Run every pending run of ``spec`` into the store at ``out_dir``.

    Args:
        spec: Parsed scenario spec (its sweep defines the run grid).
        out_dir: Campaign directory (created on first use; re-use
            requires the same spec digest).
        jobs: Worker processes; ``1`` executes inline in this process.
        resume: Skip runs whose results already parse on disk.  With
            ``resume=False`` every run re-executes and overwrites.
        progress: Optional callback for one-line progress messages
            (completion counts, runs/min, ETA).
        trace: Record each run under a causal-tracing session and write
            per-run shards to ``<out>/traces/`` (see module docstring).

    Returns:
        Summary dict: totals, the runs executed/skipped, store paths.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    say = progress or (lambda _msg: None)
    store = CampaignStore(out_dir)
    store.initialize(spec)
    store.clear_heartbeats()  # stale telemetry from a previous attempt
    trace_root: Optional[Dict[str, Any]] = None
    if trace:
        # One root per campaign identity: name + spec digest, so the
        # same campaign re-run (or resumed) rejoins the same trace.
        trace_root = TraceContext.root(
            f"{spec.name}:{spec.digest}", seed=0
        ).to_wire()
    runs = spec.runs()
    done = store.completed_run_ids() if resume else set()
    pending = [r for r in runs if r.run_id not in done]
    say(
        f"campaign {spec.name}: {len(runs)} runs "
        f"({len(runs) - len(pending)} already done, {len(pending)} to go, "
        f"jobs={jobs})"
    )

    watch = Stopwatch()
    executed: List[str] = []
    failures: List[Dict[str, Any]] = []

    def announce(run_id: str) -> None:
        finished = len(executed) + len(failures)
        say(
            f"run {run_id} done "
            f"({progress_line(finished, len(pending), watch.elapsed_s())})"
        )

    if jobs == 1 or len(pending) <= 1:
        for run in pending:
            _finish(store, spec, run, out_dir, failures, executed, say, trace_root)
            if executed and executed[-1] == run.run_id:
                announce(run.run_id)
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(execute_one, run, spec.name, out_dir, trace_root): run
                for run in pending
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for fut in finished:
                    run = futures[fut]
                    try:
                        record = fut.result()
                    except Exception as exc:  # noqa: BLE001 - reported per run
                        failures.append({"run_id": run.run_id, "error": str(exc)})
                        say(f"run {run.run_id} FAILED: {exc}")
                        continue
                    store.write_result(record)
                    executed.append(run.run_id)
                    announce(run.run_id)

    store.clear_heartbeats()  # fleet is gone; drop the live telemetry
    summary = {
        "name": spec.name,
        "spec_digest": spec.digest,
        "out_dir": out_dir,
        "total": len(runs),
        "skipped": len(runs) - len(pending),
        "executed": sorted(executed),
        "failed": failures,
        "completed": len(store.completed_run_ids()),
    }
    if trace_root is not None:
        summary["trace_id"] = trace_root["trace"]
        summary["trace_shards"] = len(store.trace_shards())
        summary["traces_dir"] = store.traces_dir
    return summary


def _finish(
    store: CampaignStore,
    spec: ScenarioSpec,
    run: RunConfig,
    out_dir: str,
    failures: List[Dict[str, Any]],
    executed: List[str],
    say: ProgressFn,
    trace_root: Optional[Dict[str, Any]] = None,
) -> None:
    try:
        record = execute_one(run, spec.name, out_dir, trace_root)
    except Exception as exc:  # noqa: BLE001 - reported per run
        failures.append({"run_id": run.run_id, "error": str(exc)})
        say(f"run {run.run_id} FAILED: {exc}")
        return
    store.write_result(record)
    executed.append(run.run_id)
