"""On-disk result store for scenario campaigns.

Layout of one campaign directory::

    <dir>/campaign.json        index: spec digest, name, full run grid
    <dir>/spec.resolved.yaml   the fully resolved spec the grid came from
    <dir>/runs/<run_id>.json   one self-contained record per finished run
    <dir>/traces/<run_id>.jsonl  per-run trace shard (traced campaigns)

Every write is atomic (temp file + :func:`os.replace`), so a campaign
killed mid-run never leaves a torn record: on resume, a run file either
parses — the run is done and is skipped — or it does not exist / does
not parse and the run is executed again.  Status is always derived
from the run files themselves, never from mutable index state.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Set

from ..scenarios.spec import ScenarioSpec
from ..scenarios.yamlparse import dump_yaml

__all__ = ["CampaignError", "CampaignStore", "HEARTBEAT_STALE_S"]

INDEX_NAME = "campaign.json"
SPEC_NAME = "spec.resolved.yaml"
RUNS_DIR = "runs"
HEARTBEAT_DIR = "heartbeats"
TRACES_DIR = "traces"

# A worker heartbeat older than this (by its own epoch stamp) is shown
# as stale: the worker likely exited without cleanup.
HEARTBEAT_STALE_S = 120.0


class CampaignError(RuntimeError):
    """A campaign directory is unusable for the requested operation."""


def _atomic_write(path: str, text: str) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class CampaignStore:
    """One campaign directory: index, resolved spec, per-run records."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.runs_dir = os.path.join(root, RUNS_DIR)

    # -- paths ------------------------------------------------------------

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, INDEX_NAME)

    @property
    def spec_path(self) -> str:
        return os.path.join(self.root, SPEC_NAME)

    def run_path(self, run_id: str) -> str:
        return os.path.join(self.runs_dir, f"{run_id}.json")

    @property
    def heartbeat_dir(self) -> str:
        return os.path.join(self.root, HEARTBEAT_DIR)

    def heartbeat_path(self, worker: str) -> str:
        return os.path.join(self.heartbeat_dir, f"{worker}.json")

    @property
    def traces_dir(self) -> str:
        return os.path.join(self.root, TRACES_DIR)

    def trace_path(self, run_id: str) -> str:
        return os.path.join(self.traces_dir, f"{run_id}.jsonl")

    def trace_shards(self) -> List[str]:
        """Per-run trace shard files, sorted by name (merge input).

        Flight-recorder dumps (``flight-*.jsonl``) live in the same
        directory but are diagnostics, not shards.
        """
        try:
            names = os.listdir(self.traces_dir)
        except FileNotFoundError:
            return []
        return [
            os.path.join(self.traces_dir, name)
            for name in sorted(names)
            if name.endswith(".jsonl") and not name.startswith("flight-")
        ]

    # -- lifecycle --------------------------------------------------------

    def initialize(self, spec: ScenarioSpec) -> Dict[str, Any]:
        """Create (or re-open) the campaign directory for ``spec``.

        Re-opening with a spec whose digest differs from the stored one
        raises — results from different configurations must not mix in
        one directory.
        """
        existing = self.read_index()
        if existing is not None:
            if existing.get("spec_digest") != spec.digest:
                raise CampaignError(
                    f"campaign at {self.root} was created from spec digest "
                    f"{existing.get('spec_digest')} but the current spec "
                    f"resolves to {spec.digest}; use a fresh directory"
                )
            return existing
        os.makedirs(self.runs_dir, exist_ok=True)
        index = {
            "schema": 1,
            "name": spec.name,
            "spec_digest": spec.digest,
            "source": spec.source,
            "runs": [
                {"run_id": r.run_id, "index": r.index, "seed": r.seed,
                 "overrides": r.overrides}
                for r in spec.runs()
            ],
        }
        _atomic_write(self.index_path, json.dumps(index, indent=2, sort_keys=True))
        _atomic_write(self.spec_path, dump_yaml(spec.resolved))
        return index

    def read_index(self) -> Optional[Dict[str, Any]]:
        """The campaign index, or ``None`` when not initialized."""
        try:
            with open(self.index_path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(f"unreadable campaign index {self.index_path}: {exc}")

    def require_index(self) -> Dict[str, Any]:
        index = self.read_index()
        if index is None:
            raise CampaignError(f"no campaign at {self.root} (missing {INDEX_NAME})")
        return index

    # -- run records ------------------------------------------------------

    def write_result(self, record: Dict[str, Any]) -> str:
        """Persist one finished run atomically; returns the file path."""
        run_id = record["run_id"]
        os.makedirs(self.runs_dir, exist_ok=True)
        path = self.run_path(run_id)
        _atomic_write(path, json.dumps(record, indent=2, sort_keys=True))
        return path

    def read_result(self, run_id: str) -> Optional[Dict[str, Any]]:
        """A finished run's record, or ``None`` if missing or torn."""
        try:
            with open(self.run_path(run_id), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None

    def completed_run_ids(self) -> Set[str]:
        """Run IDs with a parseable result file on disk."""
        try:
            names = os.listdir(self.runs_dir)
        except FileNotFoundError:
            return set()
        done: Set[str] = set()
        for name in sorted(names):
            if not name.endswith(".json"):
                continue
            run_id = name[: -len(".json")]
            if self.read_result(run_id) is not None:
                done.add(run_id)
        return done

    def results(self) -> List[Dict[str, Any]]:
        """All finished run records, ordered by run index."""
        index = self.require_index()
        out: List[Dict[str, Any]] = []
        for row in index["runs"]:
            record = self.read_result(row["run_id"])
            if record is not None:
                out.append(record)
        return sorted(out, key=lambda r: r.get("index", 0))

    def write_trace_shard(self, run_id: str, jsonl: str) -> str:
        """Persist one run's trace shard atomically; returns the path."""
        os.makedirs(self.traces_dir, exist_ok=True)
        path = self.trace_path(run_id)
        _atomic_write(path, jsonl)
        return path

    # -- worker heartbeats -------------------------------------------------
    #
    # One JSON file per worker under <dir>/heartbeats/, written
    # atomically after every completed run.  Heartbeats are pure
    # telemetry: wall-clock-bearing, never read back into results, and
    # cleared when a campaign finishes.

    def write_heartbeat(self, record: Dict[str, Any]) -> str:
        """Persist one worker heartbeat atomically; returns the path."""
        worker = record["worker"]
        os.makedirs(self.heartbeat_dir, exist_ok=True)
        path = self.heartbeat_path(worker)
        _atomic_write(path, json.dumps(record, indent=2, sort_keys=True))
        return path

    def heartbeats(self) -> List[Dict[str, Any]]:
        """All parseable worker heartbeats, sorted by worker name."""
        try:
            names = os.listdir(self.heartbeat_dir)
        except FileNotFoundError:
            return []
        out: List[Dict[str, Any]] = []
        for name in sorted(names):
            if not name.endswith(".json"):
                continue
            try:
                with open(
                    os.path.join(self.heartbeat_dir, name),
                    "r",
                    encoding="utf-8",
                ) as fh:
                    record = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue  # torn heartbeat: a fresh one lands shortly
            if isinstance(record, dict):
                out.append(record)
        return sorted(out, key=lambda r: str(r.get("worker")))

    def clear_heartbeats(self) -> None:
        """Remove all heartbeat files (campaign finished or restarted)."""
        try:
            names = os.listdir(self.heartbeat_dir)
        except FileNotFoundError:
            return
        for name in names:
            if name.endswith(".json"):
                try:
                    os.remove(os.path.join(self.heartbeat_dir, name))
                except OSError:
                    pass

    def status(self) -> Dict[str, Any]:
        """Completion state derived from the run files on disk."""
        index = self.require_index()
        done = self.completed_run_ids()
        runs = [
            {
                "run_id": row["run_id"],
                "index": row["index"],
                "seed": row["seed"],
                "overrides": row.get("overrides", {}),
                "done": row["run_id"] in done,
            }
            for row in index["runs"]
        ]
        completed = sum(1 for row in runs if row["done"])
        return {
            "name": index.get("name"),
            "spec_digest": index.get("spec_digest"),
            "total": len(runs),
            "completed": completed,
            "pending": len(runs) - completed,
            "trace_shards": len(self.trace_shards()),
            "runs": runs,
        }
