"""Campaign orchestration: run scenario sweeps in parallel, store, query.

A *campaign* is one scenario spec executed over its full sweep grid
into an on-disk result store.  The package splits cleanly:

* :mod:`~repro.campaign.store` — atomic per-run records + index;
* :mod:`~repro.campaign.runner` — parallel execution with resume;
* :mod:`~repro.campaign.report` — status / report / regression diff.

Entry points surface as ``repro.tools campaign run|status|report|diff``.
"""

from __future__ import annotations

from .report import campaign_diff, campaign_report, campaign_status, fleet_status
from .runner import execute_one, progress_line, run_campaign
from .store import CampaignError, CampaignStore

__all__ = [
    "CampaignError",
    "CampaignStore",
    "campaign_diff",
    "campaign_report",
    "campaign_status",
    "fleet_status",
    "execute_one",
    "progress_line",
    "run_campaign",
]
