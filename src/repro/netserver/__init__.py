"""ChirpStack-like network server: dedup, logging, config distribution."""

from __future__ import annotations

from .records import LOG_FIELDS, UplinkRecord, format_log_line
from .server import NetworkServer

__all__ = ["LOG_FIELDS", "UplinkRecord", "format_log_line", "NetworkServer"]
