"""The LoRaWAN network server (ChirpStack stand-in).

Responsibilities modelled: ingesting per-gateway receptions, dedup of
multi-gateway copies, operational logging (consumed by AlphaWAN's log
parser), and pushing downlink configuration — channel creation and ADR
MAC commands — to gateways and end devices.

Resilience: :meth:`NetworkServer.sync_with_master` keeps the last
assignment obtained from the AlphaWAN Master; when the Master becomes
unreachable the server keeps operating on that cached channel plan and
raises a ``degraded`` flag instead of suspending the network.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..faults.cache import AssignmentCache
from ..faults.retry import MasterUnavailableError
from ..gateway.gateway import Gateway, GatewayReception, Outcome
from ..node.device import EndDevice
from ..obs import runtime as _obs
from ..obs.events import EventType
from ..phy.channels import Channel
from ..phy.lora import DataRate
from .records import UplinkRecord, format_log_line

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.master import Assignment
    from ..core.master_client import MasterClient
    from ..obs.httpexport import HealthHTTPExporter

logger = logging.getLogger(__name__)

__all__ = ["NetworkServer"]


class NetworkServer:
    """Network server for one operator network.

    Args:
        network_id: The operator network this server manages.
        gateways: Gateways registered to this server.
        devices: Subscribed end devices.
    """

    def __init__(
        self,
        network_id: int,
        gateways: Sequence[Gateway] = (),
        devices: Sequence[EndDevice] = (),
    ) -> None:
        self.network_id = network_id
        self.gateways: List[Gateway] = []
        self.devices: Dict[int, EndDevice] = {}
        for gw in gateways:
            self.register_gateway(gw)
        for dev in devices:
            self.register_device(dev)
        self.records: List[UplinkRecord] = []
        self._seen: Set[tuple] = set()
        self.duplicates = 0
        # Master-sync state: last-known assignment and degraded flag.
        self.last_assignment = None
        self.degraded = False
        self.degraded_syncs = 0
        self._exporter = None

    def register_gateway(self, gateway: Gateway) -> None:
        """Attach a gateway to this server."""
        if gateway.network_id != self.network_id:
            raise ValueError(
                f"gateway {gateway.gateway_id} belongs to network "
                f"{gateway.network_id}, not {self.network_id}"
            )
        self.gateways.append(gateway)

    def register_device(self, device: EndDevice) -> None:
        """Subscribe an end device."""
        if device.network_id != self.network_id:
            raise ValueError(
                f"device {device.node_id} belongs to network "
                f"{device.network_id}, not {self.network_id}"
            )
        self.devices[device.node_id] = device

    # ------------------------------------------------------------------
    # Uplink path
    # ------------------------------------------------------------------

    def ingest(self, receptions: Iterable[GatewayReception]) -> List[UplinkRecord]:
        """Ingest gateway receptions; returns the newly deduped uplinks.

        Only successfully received own-network packets produce records;
        multi-gateway copies of the same uplink are collapsed (the first
        copy wins, as in ChirpStack's dedup window).
        """
        fresh: List[UplinkRecord] = []
        rec_trace = _obs.TRACE
        metrics = _obs.METRICS
        for rec in receptions:
            if rec.outcome is not Outcome.RECEIVED:
                continue
            tx = rec.transmission
            if tx.network_id != self.network_id:
                continue
            record = UplinkRecord(
                timestamp_s=rec.lock_on_s if rec.lock_on_s is not None else tx.start_s,
                gateway_id=rec.gateway_id,
                network_id=tx.network_id,
                node_id=tx.node_id,
                counter=tx.counter,
                frequency_hz=tx.channel.center_hz,
                dr=int(tx.params.dr),
                snr_db=rec.snr_db if rec.snr_db is not None else 0.0,
                rssi_dbm=0.0 if rec.snr_db is None else rec.snr_db - 120.0,
                payload_bytes=tx.payload_bytes,
            )
            self.records.append(record)
            key = record.key()
            dup = key in self._seen
            if rec_trace is not None:
                rec_trace.emit(
                    EventType.NETSERVER_UPLINK,
                    t=record.timestamp_s,
                    gw=record.gateway_id,
                    net=record.network_id,
                    node=record.node_id,
                    ctr=record.counter,
                    att=tx.attempt,
                    dup=dup,
                )
            if metrics is not None:
                metrics.counter(
                    "repro_netserver_uplinks_total",
                    "own-network uplinks ingested (including duplicates)",
                    network=self.network_id,
                ).inc()
                if dup:
                    metrics.counter(
                        "repro_netserver_duplicates_total",
                        "multi-gateway copies collapsed by dedup",
                        network=self.network_id,
                    ).inc()
            if dup:
                self.duplicates += 1
                continue
            self._seen.add(key)
            fresh.append(record)
        return fresh

    def log_lines(self) -> List[str]:
        """The operational log (every gateway copy, not deduped)."""
        return [format_log_line(r) for r in self.records]

    def received_node_ids(self) -> Set[int]:
        """Nodes with at least one delivered uplink."""
        return {r.node_id for r in self.records}

    # ------------------------------------------------------------------
    # Downlink path (configuration distribution)
    # ------------------------------------------------------------------

    def configure_gateway(self, gateway_id: int, channels: Sequence[Channel]) -> None:
        """Push a channel configuration to one gateway (reboots it)."""
        for gw in self.gateways:
            if gw.gateway_id == gateway_id:
                gw.configure(channels)
                gw.reboot()
                return
        raise KeyError(f"no gateway {gateway_id} on network {self.network_id}")

    def configure_device(
        self,
        node_id: int,
        channel: Optional[Channel] = None,
        dr: Optional[DataRate] = None,
        tx_power_dbm: Optional[float] = None,
    ) -> None:
        """Send ADR / channel MAC commands to one device."""
        try:
            dev = self.devices[node_id]
        except KeyError:
            raise KeyError(f"no device {node_id} on network {self.network_id}")
        dev.apply_config(channel=channel, dr=dr, tx_power_dbm=tx_power_dbm)

    # ------------------------------------------------------------------
    # Master synchronization (degraded-mode fallback)
    # ------------------------------------------------------------------

    def sync_with_master(
        self,
        master_client: "MasterClient",
        operator: str,
        cache: Optional[AssignmentCache] = None,
    ) -> "Assignment":
        """Fetch this operator's channel assignment from the Master.

        On success the assignment is remembered (and stored into
        ``cache`` when given) and ``degraded`` clears.  When the Master
        is unreachable, the server falls back to its last-known
        assignment — or the cache's — and sets ``degraded`` instead of
        raising; only with no fallback at all does the error propagate.

        Returns:
            The (fresh or cached) :class:`~repro.core.master.Assignment`.
        """
        from ..core.protocol import ProtocolError

        try:
            assignment = master_client.register(operator)
        except (MasterUnavailableError, ProtocolError, OSError):
            cached = self.last_assignment
            if cached is None and cache is not None:
                cached = cache.get(operator)
            if cached is None:
                raise
            self.degraded = True
            self.degraded_syncs += 1
            self.last_assignment = cached
            rec_trace = _obs.TRACE
            if rec_trace is not None:
                rec_trace.emit(
                    EventType.NETSERVER_DEGRADED,
                    net=self.network_id,
                    syncs=self.degraded_syncs,
                )
            logger.warning(
                "network %d: master unreachable, serving cached assignment "
                "(degraded sync #%d)",
                self.network_id,
                self.degraded_syncs,
            )
            return cached
        self.degraded = False
        self.last_assignment = assignment
        if cache is not None:
            cache.store(assignment)
        return assignment

    # ------------------------------------------------------------------
    # Health exposure
    # ------------------------------------------------------------------

    def health_snapshot(self) -> Dict[str, object]:
        """Operational state for ``/healthz`` (degraded = cached plan)."""
        return {
            "network_id": self.network_id,
            "degraded": self.degraded,
            "degraded_syncs": self.degraded_syncs,
            "gateways": len(self.gateways),
            "devices": len(self.devices),
            "uplinks": len(self.records),
            "duplicates": self.duplicates,
            "has_assignment": self.last_assignment is not None,
        }

    def attach_exporter(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "HealthHTTPExporter":
        """Attach a health/metrics HTTP endpoint to this network server.

        ``/healthz`` merges :meth:`health_snapshot` under
        ``sources.netserver``, so the endpoint flips to 503 while the
        server runs degraded on a cached Master assignment.  Close the
        returned exporter when done (it owns a daemon thread).
        """
        from ..obs.httpexport import HealthHTTPExporter

        if self._exporter is None:
            self._exporter = HealthHTTPExporter(
                health_sources={"netserver": self.health_snapshot},
                host=host,
                port=port,
            ).start()
        return self._exporter

    def close_exporter(self) -> None:
        """Detach and stop the HTTP exporter, if one is attached."""
        if self._exporter is not None:
            self._exporter.close()
            self._exporter = None

    def clear(self) -> None:
        """Drop logs and dedup state (new measurement epoch)."""
        self.records.clear()
        self._seen.clear()
        self.duplicates = 0
