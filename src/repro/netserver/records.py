"""Uplink metadata records and the operational log format.

Gateways forward received packets to the network server together with
reception metadata (channel, timestamp, SNR).  ChirpStack stores this
metadata in operational logs; AlphaWAN's log parser re-extracts it to
feed the traffic estimator and the CP solver (section 4.3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["UplinkRecord", "format_log_line", "LOG_FIELDS"]

LOG_FIELDS = (
    "ts",
    "gw",
    "net",
    "dev",
    "fcnt",
    "freq",
    "dr",
    "snr",
    "rssi",
    "size",
)


@dataclass(frozen=True)
class UplinkRecord:
    """One received uplink as logged by the network server."""

    timestamp_s: float
    gateway_id: int
    network_id: int
    node_id: int
    counter: int
    frequency_hz: float
    dr: int
    snr_db: float
    rssi_dbm: float
    payload_bytes: int

    def key(self) -> tuple:
        """Dedup key: one uplink may arrive via several gateways."""
        return (self.network_id, self.node_id, self.counter)


def format_log_line(record: UplinkRecord) -> str:
    """Serialize a record into the ChirpStack-style key=value log line.

    Example::

        up ts=12.345678 gw=3 net=1 dev=42 fcnt=7 freq=923100000 dr=5 \
snr=8.25 rssi=-97.50 size=10
    """
    return (
        "up "
        f"ts={record.timestamp_s:.6f} "
        f"gw={record.gateway_id} "
        f"net={record.network_id} "
        f"dev={record.node_id} "
        f"fcnt={record.counter} "
        f"freq={record.frequency_hz:.0f} "
        f"dr={record.dr} "
        f"snr={record.snr_db:.2f} "
        f"rssi={record.rssi_dbm:.2f} "
        f"size={record.payload_bytes}"
    )
