"""Deployment geometry: gateway/node placement and link budgets.

Stands in for the paper's 2.1 km x 1.6 km urban testbed (Figure 11):
gateways on a regular grid, nodes scattered uniformly, and a seeded
log-distance path-loss model supplying every link RSSI/SNR.  Path loss
per (node, gateway) pair is cached — the deployment is static.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..phy.link import (
    LogDistancePathLoss,
    PathLossModel,
    Position,
    noise_floor_dbm,
)

__all__ = [
    "AREA_WIDTH_M",
    "AREA_HEIGHT_M",
    "grid_positions",
    "uniform_positions",
    "clustered_positions",
    "imported_positions",
    "LinkBudget",
]

# The paper's testbed footprint.
AREA_WIDTH_M = 2_100.0
AREA_HEIGHT_M = 1_600.0


def grid_positions(
    count: int,
    width_m: float = AREA_WIDTH_M,
    height_m: float = AREA_HEIGHT_M,
) -> List[Position]:
    """Place ``count`` gateways on a near-square grid inside the area.

    Grid placement mirrors how operators densify coverage; it is
    deterministic so capacity curves vary only with the planner.
    """
    if count < 1:
        raise ValueError("need at least one position")
    cols = int(count ** 0.5)
    while cols * (count // cols + (1 if count % cols else 0)) < count:
        cols += 1
    rows = count // cols + (1 if count % cols else 0)
    positions: List[Position] = []
    for i in range(count):
        r, c = divmod(i, cols)
        x = width_m * (c + 0.5) / cols
        y = height_m * (r + 0.5) / rows
        positions.append(Position(x, y))
    return positions


def uniform_positions(
    count: int,
    seed: int = 0,
    width_m: float = AREA_WIDTH_M,
    height_m: float = AREA_HEIGHT_M,
) -> List[Position]:
    """Scatter ``count`` nodes uniformly at random (seeded)."""
    rng = random.Random(seed)
    return [
        Position(rng.uniform(0.0, width_m), rng.uniform(0.0, height_m))
        for _ in range(count)
    ]


def clustered_positions(
    count: int,
    seed: int = 0,
    width_m: float = AREA_WIDTH_M,
    height_m: float = AREA_HEIGHT_M,
    clusters: int = 4,
    spread_m: float = 60.0,
) -> List[Position]:
    """Scatter ``count`` nodes around seeded hot spots.

    Models campus/industrial deployments where devices gather in a few
    dense pockets: ``clusters`` centers are drawn uniformly over the
    area, then each node picks a center and lands a Gaussian
    ``spread_m`` away (clamped to the area).
    """
    if clusters < 1:
        raise ValueError("need at least one cluster")
    rng = random.Random(seed)
    centers = [
        (rng.uniform(0.0, width_m), rng.uniform(0.0, height_m))
        for _ in range(clusters)
    ]
    out: List[Position] = []
    for _ in range(count):
        cx, cy = centers[rng.randrange(clusters)]
        x = min(max(rng.gauss(cx, spread_m), 0.0), width_m)
        y = min(max(rng.gauss(cy, spread_m), 0.0), height_m)
        out.append(Position(x, y))
    return out


def imported_positions(
    count: int,
    points: Sequence[Sequence[float]],
    width_m: float = AREA_WIDTH_M,
    height_m: float = AREA_HEIGHT_M,
) -> List[Position]:
    """Place ``count`` nodes on an imported point set, cycling if short.

    Points outside the area are clamped onto it — imported survey data
    often hangs slightly over the modeled footprint.
    """
    if not points:
        raise ValueError("need at least one imported point")
    out: List[Position] = []
    for i in range(count):
        x, y = points[i % len(points)]
        out.append(
            Position(
                min(max(float(x), 0.0), width_m),
                min(max(float(y), 0.0), height_m),
            )
        )
    return out


@dataclass
class LinkBudget:
    """Cached link-budget calculator over a static deployment.

    Args:
        path_loss: The propagation model (defaults to the calibrated
            urban log-distance model).
        noise_figure_db: Gateway receiver noise figure.
    """

    path_loss: PathLossModel = field(default_factory=LogDistancePathLoss)
    noise_figure_db: float = 6.0
    _cache: Dict[Tuple[float, float, float, float], float] = field(
        default_factory=dict, repr=False
    )

    def path_loss_db(self, a: Position, b: Position) -> float:
        """Cached path loss for the (unordered) link ``a <-> b``."""
        key = (a.x, a.y, b.x, b.y) if (a.x, a.y) <= (b.x, b.y) else (
            b.x, b.y, a.x, a.y
        )
        loss = self._cache.get(key)
        if loss is None:
            loss = self.path_loss.path_loss_db(a, b)
            self._cache[key] = loss
        return loss

    def rssi_dbm(
        self,
        tx_power_dbm: float,
        a: Position,
        b: Position,
        antenna_gain_db: float = 0.0,
    ) -> float:
        """Received power for a transmission over the link."""
        return tx_power_dbm + antenna_gain_db - self.path_loss_db(a, b)

    def snr_db(
        self,
        tx_power_dbm: float,
        a: Position,
        b: Position,
        bandwidth_hz: float = 125_000.0,
        antenna_gain_db: float = 0.0,
    ) -> float:
        """Link SNR at the receiver."""
        return self.rssi_dbm(tx_power_dbm, a, b, antenna_gain_db) - (
            noise_floor_dbm(bandwidth_hz, self.noise_figure_db)
        )
