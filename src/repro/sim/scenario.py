"""Scenario builders: assemble gateways, devices, and configurations.

Helpers shared by the experiments: grid-deployed gateways, uniformly
scattered nodes, homogeneous standard-plan configuration (the status
quo the paper critiques), and orthogonal (channel, DR) assignment for
capacity bursts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..gateway.gateway import Gateway
from ..gateway.models import GatewayModel, get_model
from ..node.device import EndDevice
from ..phy.channels import Channel, ChannelGrid, ChannelPlan
from ..phy.link import Position
from ..phy.lora import DataRate
from .topology import (
    AREA_HEIGHT_M,
    AREA_WIDTH_M,
    LinkBudget,
    grid_positions,
    uniform_positions,
)

__all__ = [
    "Network",
    "build_network",
    "assign_plan_homogeneous",
    "assign_orthogonal_combos",
    "assign_random_channels",
    "assign_tier_by_reach",
    "all_combos",
]


@dataclass
class Network:
    """One operator's deployment: its gateways and subscribed devices."""

    network_id: int
    gateways: List[Gateway] = field(default_factory=list)
    devices: List[EndDevice] = field(default_factory=list)

    @property
    def channels_in_use(self) -> Tuple[Channel, ...]:
        """Union of channels configured on this network's gateways."""
        chans = {c for gw in self.gateways for c in gw.channels}
        return tuple(sorted(chans))


def build_network(
    network_id: int,
    num_gateways: int,
    num_nodes: int,
    channels: Sequence[Channel],
    seed: int = 0,
    model: Optional[GatewayModel] = None,
    gateway_id_base: int = 0,
    node_id_base: int = 0,
    width_m: float = AREA_WIDTH_M,
    height_m: float = AREA_HEIGHT_M,
    default_dr: DataRate = DataRate.DR2,
    tx_power_dbm: float = 14.0,
    node_positions: Optional[Sequence[Position]] = None,
) -> Network:
    """Create a network with grid gateways and uniformly scattered nodes.

    Every gateway starts with the same ``channels`` configuration (the
    homogeneous status quo); nodes start on a round-robin channel from
    the same set.  Planners reconfigure both afterwards.  Passing
    ``node_positions`` (one per node) overrides the default uniform
    scatter — the scenario compiler uses it for clustered and imported
    device layouts.
    """
    if not channels:
        raise ValueError("need at least one channel")
    model = model or get_model()
    gw_positions = grid_positions(num_gateways, width_m, height_m)
    if node_positions is None:
        node_positions = uniform_positions(
            num_nodes, seed=seed, width_m=width_m, height_m=height_m
        )
    elif len(node_positions) != num_nodes:
        raise ValueError(
            f"node_positions has {len(node_positions)} entries "
            f"for {num_nodes} nodes"
        )
    gateways = [
        Gateway(
            gateway_id=gateway_id_base + i,
            network_id=network_id,
            position=pos,
            channels=channels,
            model=model,
        )
        for i, pos in enumerate(gw_positions)
    ]
    devices = [
        EndDevice(
            node_id=node_id_base + i,
            network_id=network_id,
            position=pos,
            channel=channels[i % len(channels)],
            dr=default_dr,
            tx_power_dbm=tx_power_dbm,
        )
        for i, pos in enumerate(node_positions)
    ]
    return Network(network_id=network_id, gateways=gateways, devices=devices)


def all_combos(
    channels: Sequence[Channel],
    drs: Sequence[DataRate] = tuple(DataRate),
) -> List[Tuple[Channel, DataRate]]:
    """Every orthogonal (channel, data-rate) cell of a spectrum block.

    The size of this list is the *theoretical capacity* of the block:
    the maximum number of users that can transmit concurrently without
    any channel contention.
    """
    return [(ch, dr) for ch in channels for dr in drs]


def assign_orthogonal_combos(
    devices: Sequence[EndDevice],
    channels: Sequence[Channel],
    drs: Sequence[DataRate] = tuple(DataRate),
) -> None:
    """Assign devices unique (channel, DR) combos, wrapping when exhausted.

    Used by every capacity-burst experiment: up to ``len(channels) * 6``
    users transmit with zero channel contention; beyond that, combos
    repeat and true collisions appear (as in Figure 15's overload leg).
    """
    combos = all_combos(channels, drs)
    for i, dev in enumerate(devices):
        ch, dr = combos[i % len(combos)]
        dev.apply_config(channel=ch, dr=dr)


def assign_plan_homogeneous(
    network: Network,
    plan: ChannelPlan,
    seed: int = 0,
) -> None:
    """Configure every gateway with ``plan`` and nodes randomly within it.

    The standard-LoRaWAN baseline: all gateways share identical channel
    settings, so they observe the same packets in the same order.
    """
    rng = random.Random(seed)
    chans = list(plan.channels)
    for gw in network.gateways:
        gw.configure(chans)
    for dev in network.devices:
        dev.apply_config(channel=rng.choice(chans))


def assign_tier_by_reach(
    network: Network,
    k_nearest: int = 3,
    spread_seed: Optional[int] = None,
) -> None:
    """Assign each device a tier covering its ``k``-th nearest gateway.

    A realistic non-ADR operating point: every node picks a data rate
    and power that keep several gateways in reach (redundancy is the
    reason LoRaWAN forwards through all gateways).  With
    ``spread_seed`` set, each node picks uniformly among the tiers at
    or above its required one — mimicking the mixed DR usage of
    operational networks where applications, not ADR, choose rates.
    """
    from ..phy.link import DEFAULT_TIERS, tier_for_distance

    if not network.gateways:
        raise ValueError("network has no gateways")
    rng = random.Random(spread_seed) if spread_seed is not None else None
    k = min(max(k_nearest, 1), len(network.gateways))
    for dev in network.devices:
        distances = sorted(
            dev.position.distance_to(gw.position) for gw in network.gateways
        )
        tier = tier_for_distance(distances[k - 1])
        if tier is None:
            tier = DEFAULT_TIERS[-1]
        if rng is not None:
            eligible = [t for t in DEFAULT_TIERS if t.index >= tier.index]
            tier = rng.choice(eligible)
        dev.apply_config(dr=tier.dr, tx_power_dbm=tier.tx_power_dbm)


def assign_random_channels(
    devices: Sequence[EndDevice],
    channels: Sequence[Channel],
    seed: int = 0,
    drs: Optional[Sequence[DataRate]] = None,
) -> None:
    """Randomize device channels (and optionally DRs) over a channel set."""
    rng = random.Random(seed)
    for dev in devices:
        dev.apply_config(channel=rng.choice(list(channels)))
        if drs:
            dev.apply_config(dr=rng.choice(list(drs)))
