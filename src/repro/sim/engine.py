"""Online (event-driven) simulation with mid-run reconfigurations.

The batch :class:`~repro.sim.simulator.Simulator` evaluates a window
under a fixed configuration.  This engine additionally processes
*reconfiguration events*: at a given instant a gateway applies a new
channel set and reboots, going dark for the reboot duration — in-flight
packets are aborted and packets locking on during the outage are lost.
This is what the paper's Figure 17 calls the *system suspension* of a
capacity upgrade, and what its advice to "schedule upgrades during idle
periods" is about.

The engine also consumes a :class:`~repro.faults.plan.FaultPlan`:
gateway crashes behave like reboots without a channel change, decoder
degradations shrink (and later restore) the decoder pool mid-run, and
backhaul faults drop or delay successfully decoded packets on their way
to the network server.  All fault randomness draws from the plan's
seeded sub-streams, so a chaos run is exactly reproducible.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults.plan import FaultPlan
from ..gateway.detector import detect
from ..gateway.gateway import Gateway, GatewayReception, Outcome
from ..obs import runtime as _obs
from ..obs.events import EventType
from ..obs.perf import Phase, PhaseStat, phase_timed
from ..obs.profiling import span
from ..phy.channels import Channel
from ..phy.interference import decode_ok
from ..phy.link import noise_floor_dbm
from ..types import Observation, Transmission
from .simulator import SimulationResult, Simulator, tx_key

logger = logging.getLogger(__name__)

__all__ = ["Reconfiguration", "OnlineSimulator", "OFFLINE_OUTCOME"]

# Packets that hit a dark (rebooting / crashed) gateway radio.
OFFLINE_OUTCOME = Outcome.GATEWAY_OFFLINE

# The in-flight watchlist is compacted (dead entries pruned) only once
# it holds at least this many entries and at least half are dead; below
# the threshold the list is too small for pruning to pay for itself.
_IN_FLIGHT_COMPACT_MIN = 8


@dataclass(frozen=True)
class Reconfiguration:
    """Apply new channels to a gateway at ``time_s`` and reboot it."""

    time_s: float
    gateway_id: int
    channels: Tuple[Channel, ...]
    outage_s: float = 4.62  # the measured mean reboot time (Fig. 17)

    def __post_init__(self) -> None:
        if self.outage_s < 0:
            raise ValueError("outage must be non-negative")
        if not self.channels:
            raise ValueError("a reconfiguration needs at least one channel")


@dataclass(frozen=True)
class _TimelineEvent:
    """One gateway-side event on the simulated timeline.

    Unifies reconfigurations (channel switch + reboot), fault-plan
    crashes (reboot, channels unchanged) and decoder-pool resizes
    (no reboot: busy decoders drain naturally).
    """

    time_s: float
    channels: Optional[Tuple[Channel, ...]] = None
    outage_s: float = 0.0
    reboot: bool = False
    decoders: Optional[int] = None


class OnlineSimulator(Simulator):
    """Batch simulator extended with timed gateway reconfigurations."""

    def run_online(
        self,
        transmissions: Sequence[Transmission],
        reconfigurations: Sequence[Reconfiguration] = (),
        fault_plan: Optional[FaultPlan] = None,
    ) -> SimulationResult:
        """Simulate a window during which gateways may reconfigure or fail.

        Device-side configuration changes are the caller's concern (the
        transmissions already carry their channels); this engine owns
        the gateway-side timeline: channel switches, reboot outages,
        injected crashes, decoder degradation, and backhaul loss.
        """
        result = SimulationResult(
            transmissions=list(transmissions), gateways=self.gateways
        )
        rec = _obs.TRACE
        run_index = rec.next_run_index() if rec is not None else 0
        if rec is not None:
            rec.emit(
                EventType.SIM_RUN_START,
                run=run_index,
                txs=len(result.transmissions),
                gateways=len(self.gateways),
                online=True,
            )
        logger.debug(
            "run_online: %d transmissions, %d gateways, %d reconfigurations",
            len(result.transmissions),
            len(self.gateways),
            len(reconfigurations),
        )
        probe = _obs.PERF
        if probe is not None:
            probe.note_run(
                len(result.transmissions),
                min((t.start_s for t in result.transmissions), default=0.0),
                max((t.end_s for t in result.transmissions), default=0.0),
            )
        with span("sim.run_online"):
            for tx in transmissions:
                result.receptions.setdefault(tx_key(tx), [])
            reconfig_by_gw: Dict[int, List[Reconfiguration]] = {}
            for rc in reconfigurations:
                reconfig_by_gw.setdefault(rc.gateway_id, []).append(rc)
            for gw in self.gateways:
                with span("gateway"):
                    with phase_timed(Phase.OBSERVE, items=len(transmissions)):
                        obs = self.observations_at(gw, transmissions)
                    events = self._gateway_events(
                        gw, reconfig_by_gw.get(gw.gateway_id, []), fault_plan
                    )
                    records = self._run_gateway(gw, obs, events, fault_plan)
                    with phase_timed(Phase.COLLECT, items=len(records)):
                        for record in records:
                            result.receptions[
                                tx_key(record.transmission)
                            ].append(record)
        if rec is not None:
            rec.emit(EventType.SIM_RUN_END, run=run_index)
        health = _obs.HEALTH
        if health is not None:
            health.evaluate()
        return result

    @staticmethod
    def _gateway_events(
        gw: Gateway,
        reconfigs: Sequence[Reconfiguration],
        fault_plan: Optional[FaultPlan],
    ) -> List[_TimelineEvent]:
        """Merge reconfigurations and fault-plan events, time-ordered."""
        events = [
            _TimelineEvent(
                time_s=rc.time_s,
                channels=tuple(rc.channels),
                outage_s=rc.outage_s,
                reboot=True,
            )
            for rc in reconfigs
        ]
        if fault_plan is not None:
            for crash in fault_plan.crashes_for(gw.gateway_id):
                events.append(
                    _TimelineEvent(
                        time_s=crash.time_s,
                        outage_s=crash.down_s,
                        reboot=True,
                    )
                )
            full_decoders = gw.model.decoders
            for deg in fault_plan.degradations_for(gw.gateway_id):
                shrunk = min(deg.decoders, full_decoders)
                events.append(
                    _TimelineEvent(time_s=deg.time_s, decoders=shrunk)
                )
                if deg.duration_s is not None:
                    events.append(
                        _TimelineEvent(
                            time_s=deg.time_s + deg.duration_s,
                            decoders=full_decoders,
                        )
                    )
        events.sort(key=lambda e: e.time_s)
        return events

    def _run_gateway(
        self,
        gw: Gateway,
        observations: Sequence[Observation],
        events: List[_TimelineEvent],
        fault_plan: Optional[FaultPlan] = None,
    ) -> List[GatewayReception]:
        """Process one gateway's timeline: lock-ons + timeline events."""
        gw.pool.reset()
        gw.pool.resize(gw.model.decoders)
        rec_trace = _obs.TRACE
        health = _obs.HEALTH
        # Per-packet phase stats are hoisted out of the loop: with the
        # probe off each hook is one ``is not None`` check, keeping the
        # default configuration inside the <5 % overhead budget.
        probe = _obs.PERF
        st_timeline: Optional[PhaseStat] = None
        st_detect: Optional[PhaseStat] = None
        st_dispatch: Optional[PhaseStat] = None
        st_decode: Optional[PhaseStat] = None
        if probe is not None:
            st_timeline = probe.stat(Phase.TIMELINE)
            st_detect = probe.stat(Phase.DETECT)
            st_dispatch = probe.stat(Phase.DISPATCH)
            st_decode = probe.stat(Phase.DECODE)
        index = gw._build_time_index(observations)
        noise_figure = gw.noise_figure_db
        backhaul_rng = (
            fault_plan.rng(f"backhaul:gw{gw.gateway_id}")
            if fault_plan is not None and fault_plan.backhaul_faults
            else None
        )

        # Timeline state.
        channels = list(gw.channels)
        offline_until = float("-inf")
        pending_idx = 0

        ordered = sorted(
            observations,
            key=lambda o: (
                o.transmission.lock_on_s,
                o.transmission.network_id,
                o.transmission.node_id,
            ),
        )
        out: List[GatewayReception] = []
        in_flight: List[Tuple[float, int]] = []  # (end_s, index into out)
        for obs in ordered:
            tx = obs.transmission
            now = tx.lock_on_s
            if health is not None:
                # Advance the gateway's sim clock so windowed aggregates
                # prune and alert rules tick even through quiet spells.
                health.advance_gateway(gw.gateway_id, now)
            # Apply timeline events due before this lock-on.
            while pending_idx < len(events) and events[pending_idx].time_s <= now:
                ev = events[pending_idx]
                pending_idx += 1
                if st_timeline is not None:
                    st_timeline.end(None)  # count-only: events are rare
                if ev.channels is not None:
                    channels = list(ev.channels)
                    gw.configure(channels)
                if ev.decoders is not None:
                    gw.pool.resize(ev.decoders)
                    if rec_trace is not None:
                        rec_trace.emit(
                            EventType.POOL_RESIZE,
                            t=ev.time_s,
                            gw=gw.gateway_id,
                            decoders=ev.decoders,
                        )
                if not ev.reboot:
                    continue
                gw.reboot()  # aborts in-flight receptions (pool reset)
                if rec_trace is not None:
                    rec_trace.emit(
                        EventType.GW_REBOOT,
                        t=ev.time_s,
                        gw=gw.gateway_id,
                        outage=ev.outage_s,
                        reason="reconfig" if ev.channels is not None else "crash",
                    )
                offline_until = max(offline_until, ev.time_s + ev.outage_s)
                # Receptions still on air when the radio restarts are
                # lost; every other field of the record is preserved so
                # metrics attribution stays honest.
                for end_s, idx in in_flight:
                    if end_s > ev.time_s:
                        # Justified allocation: this loop runs once per
                        # outage (not per packet) and the reception
                        # records are frozen dataclasses by contract.
                        out[idx] = replace(  # repro: noqa[PERF001]
                            out[idx],
                            outcome=OFFLINE_OUTCOME,
                            backhaul_delay_s=0.0,
                        )
                in_flight = []

            if now < offline_until:
                out.append(
                    GatewayReception(
                        gateway_id=gw.gateway_id,
                        transmission=tx,
                        outcome=OFFLINE_OUTCOME,
                    )
                )
                continue

            t0 = st_detect.begin() if st_detect is not None else None
            det = detect(obs, channels, noise_figure_db=noise_figure)
            if st_detect is not None:
                st_detect.end(t0)
            if det is not None and rec_trace is not None:
                rec_trace.emit(
                    EventType.GW_LOCK_ON,
                    t=det.lock_on_s,
                    gw=gw.gateway_id,
                    net=tx.network_id,
                    node=tx.node_id,
                    ctr=tx.counter,
                    att=tx.attempt,
                    snr_db=det.snr_db,
                )
            if det is None:
                from ..gateway.detector import match_rx_channel

                outcome = (
                    Outcome.CHANNEL_MISMATCH
                    if match_rx_channel(tx.channel, channels) is None
                    else Outcome.BELOW_SENSITIVITY
                )
                out.append(
                    GatewayReception(
                        gateway_id=gw.gateway_id,
                        transmission=tx,
                        outcome=outcome,
                    )
                )
                continue

            t0 = st_dispatch.begin() if st_dispatch is not None else None
            lease = gw.pool.try_allocate(
                det.lock_on_s, tx.end_s, tx.network_id, tx.node_id
            )
            if st_dispatch is not None:
                st_dispatch.end(t0)
            if lease is None:
                blockers = tuple(
                    l.holder_network_id
                    for l in gw.pool.holders(det.lock_on_s)
                )
                if rec_trace is not None:
                    rec_trace.emit(
                        EventType.DECODER_REJECT,
                        t=det.lock_on_s,
                        gw=gw.gateway_id,
                        net=tx.network_id,
                        node=tx.node_id,
                        ctr=tx.counter,
                        att=tx.attempt,
                        blockers=list(blockers),
                    )
                out.append(
                    GatewayReception(
                        gateway_id=gw.gateway_id,
                        transmission=tx,
                        outcome=Outcome.NO_DECODER,
                        rx_channel=det.rx_channel,
                        snr_db=det.snr_db,
                        lock_on_s=det.lock_on_s,
                        blocker_network_ids=blockers,
                    )
                )
                continue
            if rec_trace is not None:
                rec_trace.emit(
                    EventType.DECODER_GRANT,
                    t=det.lock_on_s,
                    gw=gw.gateway_id,
                    dec=lease.decoder_index,
                    until=lease.release_s,
                    net=tx.network_id,
                    node=tx.node_id,
                    ctr=tx.counter,
                    att=tx.attempt,
                )

            t0 = st_decode.begin() if st_decode is not None else None
            noise = noise_floor_dbm(tx.channel.bandwidth_hz, noise_figure)
            if gw.collision_resilient:
                ok = True
            else:
                ok = decode_ok(
                    obs.rssi_dbm,
                    noise,
                    tx.sf,
                    det.rx_channel,
                    gw._interferers_for(det, index),
                )
            if st_decode is not None:
                st_decode.end(t0)
            if not ok:
                outcome = Outcome.DECODE_FAILED
            elif tx.network_id != gw.network_id:
                outcome = Outcome.FILTERED_FOREIGN
            else:
                outcome = Outcome.RECEIVED
            backhaul_delay_s = 0.0
            if outcome is Outcome.RECEIVED and backhaul_rng is not None:
                fault = fault_plan.backhaul_at(gw.gateway_id, tx.end_s)
                if fault is not None:
                    if backhaul_rng.random() < fault.drop_prob:
                        outcome = Outcome.BACKHAUL_LOST
                        if rec_trace is not None:
                            rec_trace.emit(
                                EventType.BACKHAUL_DROP,
                                t=tx.end_s,
                                gw=gw.gateway_id,
                                net=tx.network_id,
                                node=tx.node_id,
                                ctr=tx.counter,
                                att=tx.attempt,
                            )
                    elif fault.delay_mean_s > 0 or fault.delay_jitter_s > 0:
                        backhaul_delay_s = fault.delay_mean_s + (
                            backhaul_rng.uniform(0.0, fault.delay_jitter_s)
                        )
                        if rec_trace is not None:
                            rec_trace.emit(
                                EventType.BACKHAUL_DELAY,
                                t=tx.end_s,
                                gw=gw.gateway_id,
                                net=tx.network_id,
                                node=tx.node_id,
                                ctr=tx.counter,
                                att=tx.attempt,
                                delay=backhaul_delay_s,
                            )
            out.append(
                GatewayReception(
                    gateway_id=gw.gateway_id,
                    transmission=tx,
                    outcome=outcome,
                    rx_channel=det.rx_channel,
                    snr_db=det.snr_db,
                    lock_on_s=det.lock_on_s,
                    backhaul_delay_s=backhaul_delay_s,
                )
            )
            in_flight.append((tx.end_s, len(out) - 1))
            # Drop finished receptions from the in-flight watchlist,
            # amortized: an entry with end_s <= now can never satisfy
            # the reboot check `end_s > ev.time_s` again (events fire
            # in timeline order, so every later event has
            # time_s > now), which makes stale entries inert — but
            # rebuilding the list per packet made dense bursts
            # quadratic.  Compact only once dead entries dominate.
            if len(in_flight) >= _IN_FLIGHT_COMPACT_MIN:
                live = [entry for entry in in_flight if entry[0] > now]
                if 2 * len(live) <= len(in_flight):
                    in_flight = live

        # Final per-packet outcomes, emitted only after the whole
        # timeline ran: a later reboot can retroactively turn an
        # in-flight reception into GATEWAY_OFFLINE, and the trace must
        # carry the authoritative fate (it reproduces outcome_counts).
        metrics = _obs.METRICS
        if rec_trace is not None or metrics is not None:
            with phase_timed(Phase.EMIT, items=len(out)):
                for record in out:
                    tx = record.transmission
                    outcome_value = record.outcome.value
                    if rec_trace is not None:
                        rec_trace.emit(
                            EventType.GW_RECEPTION,
                            t=tx.start_s,
                            gw=gw.gateway_id,
                            net=tx.network_id,
                            node=tx.node_id,
                            ctr=tx.counter,
                            att=tx.attempt,
                            outcome=outcome_value,
                        )
                    if metrics is not None:
                        metrics.counter(
                            "repro_outcomes_total",
                            "per-gateway reception outcomes",
                            outcome=outcome_value,
                        ).inc()
        return out
