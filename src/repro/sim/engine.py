"""Online (event-driven) simulation with mid-run reconfigurations.

The batch :class:`~repro.sim.simulator.Simulator` evaluates a window
under a fixed configuration.  This engine additionally processes
*reconfiguration events*: at a given instant a gateway applies a new
channel set and reboots, going dark for the reboot duration — in-flight
packets are aborted and packets locking on during the outage are lost.
This is what the paper's Figure 17 calls the *system suspension* of a
capacity upgrade, and what its advice to "schedule upgrades during idle
periods" is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..gateway.detector import detect
from ..gateway.gateway import Gateway, GatewayReception, Outcome
from ..phy.channels import Channel
from ..phy.interference import decode_ok
from ..phy.link import noise_floor_dbm
from ..types import Observation, Transmission
from .simulator import SimulationResult, Simulator, tx_key

__all__ = ["Reconfiguration", "OnlineSimulator", "OFFLINE_OUTCOME"]

# Packets that hit a rebooting gateway: modelled as a front-end outage.
OFFLINE_OUTCOME = Outcome.CHANNEL_MISMATCH


@dataclass(frozen=True)
class Reconfiguration:
    """Apply new channels to a gateway at ``time_s`` and reboot it."""

    time_s: float
    gateway_id: int
    channels: Tuple[Channel, ...]
    outage_s: float = 4.62  # the measured mean reboot time (Fig. 17)

    def __post_init__(self) -> None:
        if self.outage_s < 0:
            raise ValueError("outage must be non-negative")
        if not self.channels:
            raise ValueError("a reconfiguration needs at least one channel")


class OnlineSimulator(Simulator):
    """Batch simulator extended with timed gateway reconfigurations."""

    def run_online(
        self,
        transmissions: Sequence[Transmission],
        reconfigurations: Sequence[Reconfiguration] = (),
    ) -> SimulationResult:
        """Simulate a window during which gateways may reconfigure.

        Device-side configuration changes are the caller's concern (the
        transmissions already carry their channels); this engine owns
        the gateway-side timeline: channel set switches and reboot
        outages.
        """
        result = SimulationResult(
            transmissions=list(transmissions), gateways=self.gateways
        )
        for tx in transmissions:
            result.receptions.setdefault(tx_key(tx), [])
        reconfig_by_gw: Dict[int, List[Reconfiguration]] = {}
        for rc in reconfigurations:
            reconfig_by_gw.setdefault(rc.gateway_id, []).append(rc)
        for gw in self.gateways:
            obs = self.observations_at(gw, transmissions)
            events = sorted(
                reconfig_by_gw.get(gw.gateway_id, []), key=lambda r: r.time_s
            )
            for record in self._run_gateway(gw, obs, events):
                result.receptions[tx_key(record.transmission)].append(record)
        return result

    def _run_gateway(
        self,
        gw: Gateway,
        observations: Sequence[Observation],
        reconfigs: List[Reconfiguration],
    ) -> List[GatewayReception]:
        """Process one gateway's timeline: lock-ons + reconfigurations."""
        gw.pool.reset()
        index = gw._build_time_index(observations)
        noise_figure = gw.noise_figure_db

        # Timeline state.
        channels = list(gw.channels)
        offline_until = float("-inf")
        pending = list(reconfigs)
        pending_idx = 0

        ordered = sorted(
            observations,
            key=lambda o: (
                o.transmission.lock_on_s,
                o.transmission.network_id,
                o.transmission.node_id,
            ),
        )
        out: List[GatewayReception] = []
        in_flight: List[Tuple[float, int]] = []  # (end_s, index into out)
        for obs in ordered:
            tx = obs.transmission
            now = tx.lock_on_s
            # Apply reconfigurations due before this lock-on.
            while pending_idx < len(pending) and pending[pending_idx].time_s <= now:
                rc = pending[pending_idx]
                pending_idx += 1
                channels = list(rc.channels)
                gw.configure(channels)
                gw.reboot()  # aborts in-flight receptions (pool reset)
                offline_until = rc.time_s + rc.outage_s
                # Receptions still on air when the radio restarts are lost.
                for end_s, idx in in_flight:
                    if end_s > rc.time_s:
                        aborted = out[idx]
                        out[idx] = GatewayReception(
                            gateway_id=aborted.gateway_id,
                            transmission=aborted.transmission,
                            outcome=OFFLINE_OUTCOME,
                            rx_channel=aborted.rx_channel,
                            snr_db=aborted.snr_db,
                            lock_on_s=aborted.lock_on_s,
                        )
                in_flight = []

            if now < offline_until:
                out.append(
                    GatewayReception(
                        gateway_id=gw.gateway_id,
                        transmission=tx,
                        outcome=OFFLINE_OUTCOME,
                    )
                )
                continue

            det = detect(obs, channels, noise_figure_db=noise_figure)
            if det is None:
                from ..gateway.detector import match_rx_channel

                outcome = (
                    Outcome.CHANNEL_MISMATCH
                    if match_rx_channel(tx.channel, channels) is None
                    else Outcome.BELOW_SENSITIVITY
                )
                out.append(
                    GatewayReception(
                        gateway_id=gw.gateway_id,
                        transmission=tx,
                        outcome=outcome,
                    )
                )
                continue

            lease = gw.pool.try_allocate(
                det.lock_on_s, tx.end_s, tx.network_id, tx.node_id
            )
            if lease is None:
                out.append(
                    GatewayReception(
                        gateway_id=gw.gateway_id,
                        transmission=tx,
                        outcome=Outcome.NO_DECODER,
                        rx_channel=det.rx_channel,
                        snr_db=det.snr_db,
                        lock_on_s=det.lock_on_s,
                        blocker_network_ids=tuple(
                            l.holder_network_id
                            for l in gw.pool.holders(det.lock_on_s)
                        ),
                    )
                )
                continue

            noise = noise_floor_dbm(tx.channel.bandwidth_hz, noise_figure)
            if gw.collision_resilient:
                ok = True
            else:
                ok = decode_ok(
                    obs.rssi_dbm,
                    noise,
                    tx.sf,
                    det.rx_channel,
                    gw._interferers_for(det, index),
                )
            if not ok:
                outcome = Outcome.DECODE_FAILED
            elif tx.network_id != gw.network_id:
                outcome = Outcome.FILTERED_FOREIGN
            else:
                outcome = Outcome.RECEIVED
            out.append(
                GatewayReception(
                    gateway_id=gw.gateway_id,
                    transmission=tx,
                    outcome=outcome,
                    rx_channel=det.rx_channel,
                    snr_db=det.snr_db,
                    lock_on_s=det.lock_on_s,
                )
            )
            in_flight.append((tx.end_s, len(out) - 1))
            # Drop finished receptions from the in-flight watchlist.
            in_flight = [(e, i) for e, i in in_flight if e > now]
        return out
