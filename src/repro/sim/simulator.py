"""Network-level simulation: medium, gateways, and delivery resolution.

The :class:`Simulator` wires the pieces together: it computes per-gateway
observations from the link budget (the "medium"), runs every gateway's
reception pipeline, and resolves network-level delivery (a packet is
delivered if *any* gateway of its own network received it — LoRaWAN has
no user-gateway association).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..gateway.gateway import Gateway, GatewayReception, Outcome
from ..node.device import EndDevice
from ..obs import runtime as _obs
from ..obs.events import EventType
from ..obs.perf import Phase, phase_timed
from ..obs.profiling import span
from ..phy.link import Position, noise_floor_dbm
from ..types import Observation, Transmission
from .topology import LinkBudget

__all__ = ["SimulationResult", "Simulator", "TxKey"]

TxKey = Tuple[int, int, int, float]  # (network, node, counter, start)

# Signals weaker than this margin below the noise floor are dropped from
# a gateway's observation set entirely: they can neither be detected
# (LoRa demodulates down to ~-23 dB SNR) nor contribute measurable
# interference energy.
PRUNE_MARGIN_DB = 30.0


def tx_key(tx: Transmission) -> TxKey:
    """Canonical per-packet key."""
    return (tx.network_id, tx.node_id, tx.counter, tx.start_s)


@dataclass
class SimulationResult:
    """Outcome of one simulated window."""

    transmissions: List[Transmission]
    # Per-packet records at every gateway that observed it.
    receptions: Dict[TxKey, List[GatewayReception]] = field(default_factory=dict)
    gateways: List[Gateway] = field(default_factory=list)

    def records_for(self, tx: Transmission) -> List[GatewayReception]:
        """All gateway records for one transmission."""
        return self.receptions.get(tx_key(tx), [])

    def delivered(self, tx: Transmission) -> bool:
        """Whether the packet reached its own network server."""
        return any(
            r.received and r.gateway_id in self.own_gateway_ids(tx.network_id)
            for r in self.records_for(tx)
        )

    def own_gateway_ids(self, network_id: int) -> set:
        key = ("own", network_id)
        cache = getattr(self, "_own_cache", None)
        if cache is None:
            cache = {}
            self._own_cache = cache
        if key not in cache:
            cache[key] = {
                g.gateway_id for g in self.gateways if g.network_id == network_id
            }
        return cache[key]

    def delivered_count(self, network_id: Optional[int] = None) -> int:
        """Packets delivered, optionally restricted to one network."""
        return sum(
            1
            for tx in self.transmissions
            if (network_id is None or tx.network_id == network_id)
            and self.delivered(tx)
        )

    def offered_count(self, network_id: Optional[int] = None) -> int:
        """Packets offered, optionally restricted to one network."""
        return sum(
            1
            for tx in self.transmissions
            if network_id is None or tx.network_id == network_id
        )

    def prr(self, network_id: Optional[int] = None) -> float:
        """Packet reception ratio."""
        offered = self.offered_count(network_id)
        if offered == 0:
            return 0.0
        return self.delivered_count(network_id) / offered


class Simulator:
    """Batch simulator over a static deployment.

    Args:
        gateways: All gateways in the area — across *every* coexisting
            network; gateways observe foreign packets too.
        devices: All end devices (for positions).
        link: Link-budget calculator.
    """

    def __init__(
        self,
        gateways: Sequence[Gateway],
        devices: Sequence[EndDevice],
        link: Optional[LinkBudget] = None,
    ) -> None:
        ids = [g.gateway_id for g in gateways]
        if len(set(ids)) != len(ids):
            raise ValueError("gateway ids must be unique")
        self.gateways = list(gateways)
        self.devices: Dict[Tuple[int, int], EndDevice] = {
            (d.network_id, d.node_id): d for d in devices
        }
        if len(self.devices) != len(devices):
            raise ValueError("(network_id, node_id) pairs must be unique")
        self.link = link or LinkBudget()

    def _device_position(self, tx: Transmission) -> Position:
        dev = self.devices.get((tx.network_id, tx.node_id))
        if dev is None:
            raise KeyError(
                f"transmission from unknown device "
                f"net={tx.network_id} node={tx.node_id}"
            )
        return dev.position

    def observations_at(
        self, gateway: Gateway, transmissions: Sequence[Transmission]
    ) -> List[Observation]:
        """The audible observation set at one gateway (pruned)."""
        floor = noise_floor_dbm(125_000.0, gateway.noise_figure_db)
        cutoff = floor - PRUNE_MARGIN_DB
        out: List[Observation] = []
        for tx in transmissions:
            rssi = self.link.rssi_dbm(
                tx.tx_power_dbm, self._device_position(tx), gateway.position
            )
            if rssi >= cutoff:
                out.append(Observation(transmission=tx, rssi_dbm=rssi))
        return out

    def run(self, transmissions: Sequence[Transmission]) -> SimulationResult:
        """Simulate one window of traffic across all gateways."""
        result = SimulationResult(
            transmissions=list(transmissions), gateways=self.gateways
        )
        rec = _obs.TRACE
        run_index = rec.next_run_index() if rec is not None else 0
        if rec is not None:
            rec.emit(
                EventType.SIM_RUN_START,
                run=run_index,
                txs=len(result.transmissions),
                gateways=len(self.gateways),
                online=False,
            )
        probe = _obs.PERF
        if probe is not None:
            probe.note_run(
                len(result.transmissions),
                min((t.start_s for t in result.transmissions), default=0.0),
                max((t.end_s for t in result.transmissions), default=0.0),
            )
        with span("sim.run"):
            for tx in transmissions:
                result.receptions.setdefault(tx_key(tx), [])
            for gw in self.gateways:
                with span("gateway"):
                    with phase_timed(Phase.OBSERVE, items=len(transmissions)):
                        obs = self.observations_at(gw, transmissions)
                    records = gw.receive(obs)
                    with phase_timed(Phase.COLLECT, items=len(records)):
                        for record in records:
                            result.receptions[
                                tx_key(record.transmission)
                            ].append(record)
        if rec is not None:
            rec.emit(EventType.SIM_RUN_END, run=run_index)
        health = _obs.HEALTH
        if health is not None:
            health.evaluate()
        return result
