"""Discrete-event network simulation over the gateway/node substrates."""

from .metrics import (
    CollisionIndex,
    LossBreakdown,
    LossCause,
    classify_loss,
    loss_breakdown,
    service_ratio,
    spectrum_utilization,
    throughput_bps,
)
from .scenario import (
    Network,
    all_combos,
    assign_orthogonal_combos,
    assign_plan_homogeneous,
    assign_random_channels,
    assign_tier_by_reach,
    build_network,
)
from .engine import OnlineSimulator, Reconfiguration
from .simulator import SimulationResult, Simulator, tx_key
from .topology import (
    AREA_HEIGHT_M,
    AREA_WIDTH_M,
    LinkBudget,
    grid_positions,
    uniform_positions,
)

__all__ = [
    "CollisionIndex", "LossBreakdown", "LossCause", "classify_loss", "loss_breakdown",
    "service_ratio", "spectrum_utilization", "throughput_bps",
    "Network", "all_combos", "assign_orthogonal_combos",
    "assign_plan_homogeneous", "assign_random_channels",
    "assign_tier_by_reach", "build_network",
    "OnlineSimulator", "Reconfiguration",
    "SimulationResult", "Simulator", "tx_key",
    "AREA_HEIGHT_M", "AREA_WIDTH_M", "LinkBudget", "grid_positions",
    "uniform_positions",
]
