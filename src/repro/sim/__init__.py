"""Discrete-event network simulation over the gateway/node substrates."""

from __future__ import annotations

from .metrics import (
    CollisionIndex,
    LossBreakdown,
    LossCause,
    bucketed_prr,
    classify_loss,
    degraded_time_s,
    loss_breakdown,
    outcome_counts,
    retry_delivery_breakdown,
    service_ratio,
    spectrum_utilization,
    throughput_bps,
    time_to_recover_s,
)
from .resilience import ResilientResult, run_with_retransmissions
from .scenario import (
    Network,
    all_combos,
    assign_orthogonal_combos,
    assign_plan_homogeneous,
    assign_random_channels,
    assign_tier_by_reach,
    build_network,
)
from .engine import OnlineSimulator, Reconfiguration
from .simulator import SimulationResult, Simulator, tx_key
from .topology import (
    AREA_HEIGHT_M,
    AREA_WIDTH_M,
    LinkBudget,
    grid_positions,
    uniform_positions,
)

__all__ = [
    "CollisionIndex", "LossBreakdown", "LossCause", "classify_loss", "loss_breakdown",
    "service_ratio", "spectrum_utilization", "throughput_bps",
    "bucketed_prr", "degraded_time_s", "outcome_counts",
    "retry_delivery_breakdown", "time_to_recover_s",
    "ResilientResult", "run_with_retransmissions",
    "Network", "all_combos", "assign_orthogonal_combos",
    "assign_plan_homogeneous", "assign_random_channels",
    "assign_tier_by_reach", "build_network",
    "OnlineSimulator", "Reconfiguration",
    "SimulationResult", "Simulator", "tx_key",
    "AREA_HEIGHT_M", "AREA_WIDTH_M", "LinkBudget", "grid_positions",
    "uniform_positions",
]
