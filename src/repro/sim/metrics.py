"""Metrics and loss-cause classification (paper Figures 4 and 13).

A lost packet is attributed to exactly one cause, with the precedence
the paper uses when dissecting operational logs:

1. **Decoder contention** — some in-range, channel-matched gateway of
   the packet's network rejected it for lack of a free decoder; split
   into *intra*- and *inter*-network contention by inspecting which
   networks held the decoders at the rejection instant.
2. **Channel contention** — the packet was admitted somewhere but the
   decode failed under co-channel interference (collision); split by
   the interfering networks.
3. **Other** — out of range, below sensitivity, or frequency-mismatched
   everywhere (noise, poor SNR, etc.).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..faults.plan import FaultPlan
from ..gateway.gateway import Outcome
from ..phy.channels import Channel, overlap_ratio
from ..phy.interference import DETECTION_MIN_OVERLAP
from ..types import Transmission, time_overlap_s
from .simulator import SimulationResult

__all__ = [
    "CollisionIndex",
    "LossCause",
    "classify_loss",
    "LossBreakdown",
    "loss_breakdown",
    "breakdown_ratios",
    "throughput_bps",
    "spectrum_utilization",
    "service_ratio",
    "outcome_counts",
    "bucketed_prr",
    "retry_delivery_breakdown",
    "time_to_recover_s",
    "degraded_time_s",
]


class LossCause(Enum):
    """Primary cause of a packet loss."""

    DELIVERED = "delivered"
    DECODER_INTRA = "decoder_contention_intra"
    DECODER_INTER = "decoder_contention_inter"
    CHANNEL_INTRA = "channel_contention_intra"
    CHANNEL_INTER = "channel_contention_inter"
    OTHER = "other"


class CollisionIndex:
    """Time-sorted, frequency-bucketed index of co-SF collision partners.

    Built once per result so classifying thousands of losses stays
    near-linear instead of quadratic.
    """

    _BUCKET_HZ = 200_000.0

    def __init__(self, transmissions: Sequence[Transmission]) -> None:
        self._buckets: Dict[Tuple[int, int], Tuple[List[Transmission], List[float], float]] = {}
        grouped: Dict[Tuple[int, int], List[Transmission]] = {}
        for tx in transmissions:
            key = (int(tx.channel.center_hz // self._BUCKET_HZ), int(tx.sf))
            grouped.setdefault(key, []).append(tx)
        for key, group in grouped.items():
            group.sort(key=lambda t: t.start_s)
            starts = [t.start_s for t in group]
            max_airtime = max(t.airtime_s for t in group)
            self._buckets[key] = (group, starts, max_airtime)

    def interferer_networks(self, tx: Transmission) -> List[int]:
        """Networks of co-SF, co-channel, time-overlapping packets."""
        from bisect import bisect_left, bisect_right

        center = int(tx.channel.center_hz // self._BUCKET_HZ)
        nets: List[int] = []
        for bucket in (center - 1, center, center + 1):
            entry = self._buckets.get((bucket, int(tx.sf)))
            if entry is None:
                continue
            group, starts, max_airtime = entry
            lo = bisect_left(starts, tx.start_s - max_airtime)
            hi = bisect_right(starts, tx.end_s)
            for other in group[lo:hi]:
                if other is tx:
                    continue
                if overlap_ratio(other.channel, tx.channel) < DETECTION_MIN_OVERLAP:
                    continue
                if time_overlap_s(tx, other) <= 0.0:
                    continue
                nets.append(other.network_id)
        return nets


def classify_loss(
    tx: Transmission,
    result: SimulationResult,
    collision_index: Optional[CollisionIndex] = None,
) -> LossCause:
    """Classify the fate of one transmission at the network level."""
    records = result.records_for(tx)
    own_ids = result.own_gateway_ids(tx.network_id)
    own = [r for r in records if r.gateway_id in own_ids]
    if any(r.received for r in own):
        return LossCause.DELIVERED

    rejected = [r for r in own if r.outcome is Outcome.NO_DECODER]
    if rejected:
        foreign_blockers = any(
            net != tx.network_id
            for r in rejected
            for net in r.blocker_network_ids
        )
        return (
            LossCause.DECODER_INTER if foreign_blockers else LossCause.DECODER_INTRA
        )

    if any(r.outcome is Outcome.DECODE_FAILED for r in own):
        if collision_index is None:
            collision_index = CollisionIndex(result.transmissions)
        nets = collision_index.interferer_networks(tx)
        foreign = any(net != tx.network_id for net in nets)
        return LossCause.CHANNEL_INTER if foreign else LossCause.CHANNEL_INTRA

    return LossCause.OTHER


@dataclass
class LossBreakdown:
    """Aggregate packet accounting for one network (or all)."""

    offered: int = 0
    counts: Counter = field(default_factory=Counter)

    def ratio(self, cause: LossCause) -> float:
        """Fraction of offered packets with the given fate."""
        if self.offered == 0:
            return 0.0
        return self.counts[cause] / self.offered

    @property
    def prr(self) -> float:
        """Packet reception ratio."""
        return self.ratio(LossCause.DELIVERED)

    @property
    def loss_ratio(self) -> float:
        """Total loss ratio."""
        return 1.0 - self.prr

    def as_dict(self) -> Dict[str, float]:
        """Ratios keyed by cause value (for reports)."""
        return {cause.value: self.ratio(cause) for cause in LossCause}


def loss_breakdown(
    result: SimulationResult, network_id: Optional[int] = None
) -> LossBreakdown:
    """Classify every packet of a network (or all networks)."""
    breakdown = LossBreakdown()
    index = CollisionIndex(result.transmissions)
    for tx in result.transmissions:
        if network_id is not None and tx.network_id != network_id:
            continue
        breakdown.offered += 1
        breakdown.counts[classify_loss(tx, result, collision_index=index)] += 1
    return breakdown


def breakdown_ratios(
    result: SimulationResult, network_id: Optional[int] = None
) -> Dict[str, float]:
    """Loss breakdown as the experiments' flat report row.

    The shared shape of every Figure 4-style series and of scenario
    run results: offered count, PRR, and the per-cause loss ratios.
    """
    b = loss_breakdown(result, network_id=network_id)
    return {
        "offered": b.offered,
        "prr": b.prr,
        "decoder_intra": b.ratio(LossCause.DECODER_INTRA),
        "decoder_inter": b.ratio(LossCause.DECODER_INTER),
        "channel_intra": b.ratio(LossCause.CHANNEL_INTRA),
        "channel_inter": b.ratio(LossCause.CHANNEL_INTER),
        "other": b.ratio(LossCause.OTHER),
    }


def throughput_bps(
    result: SimulationResult,
    window_s: float,
    network_id: Optional[int] = None,
) -> float:
    """Delivered application throughput in bits per second."""
    if window_s <= 0:
        raise ValueError("window must be positive")
    delivered_bytes = sum(
        tx.payload_bytes
        for tx in result.transmissions
        if (network_id is None or tx.network_id == network_id)
        and result.delivered(tx)
    )
    return delivered_bytes * 8.0 / window_s


def spectrum_utilization(
    result: SimulationResult,
    channels: Sequence[Channel],
) -> Dict[Tuple[int, int], int]:
    """Delivered-packet counts per (channel index, data rate) cell.

    The Figure 13d heat map: a balanced matrix means the planner exploits
    the full orthogonal channel x DR space; standard ADR concentrates
    mass in the DR5 column.
    """
    counts: Dict[Tuple[int, int], int] = {}
    for tx in result.transmissions:
        if not result.delivered(tx):
            continue
        best_idx, best_ov = None, 0.0
        for idx, ch in enumerate(channels):
            ov = overlap_ratio(tx.channel, ch)
            if ov > best_ov:
                best_idx, best_ov = idx, ov
        if best_idx is None:
            continue
        key = (best_idx, int(tx.params.dr))
        counts[key] = counts.get(key, 0) + 1
    return counts


def outcome_counts(
    result: SimulationResult, gateway_id: Optional[int] = None
) -> Dict[str, int]:
    """Per-outcome reception counts (optionally for one gateway).

    Counts every gateway record — including the fault outcomes
    ``gateway_offline`` and ``backhaul_lost`` — so chaos runs can audit
    exactly where packets died.
    """
    counts: Counter = Counter()
    for records in result.receptions.values():
        for rec in records:
            if gateway_id is not None and rec.gateway_id != gateway_id:
                continue
            counts[rec.outcome.value] += 1
    return dict(sorted(counts.items()))


def bucketed_prr(
    result: SimulationResult,
    window_s: float,
    bucket_s: float,
    network_id: Optional[int] = None,
) -> List[float]:
    """Per-bucket packet reception ratio over a window.

    Buckets with no offered traffic report 1.0 (nothing was lost).
    """
    if bucket_s <= 0 or window_s <= 0:
        raise ValueError("window and bucket must be positive")
    buckets = max(1, int(window_s // bucket_s))
    offered = [0] * buckets
    delivered = [0] * buckets
    for tx in result.transmissions:
        if network_id is not None and tx.network_id != network_id:
            continue
        b = min(int(tx.start_s // bucket_s), buckets - 1)
        offered[b] += 1
        if result.delivered(tx):
            delivered[b] += 1
    return [
        delivered[b] / offered[b] if offered[b] else 1.0
        for b in range(buckets)
    ]


def retry_delivery_breakdown(result: SimulationResult) -> Dict[str, float]:
    """Confirmed-frame delivery ratios under retransmission.

    Groups the result's confirmed transmissions by frame (network,
    node, counter) and reports the fraction delivered on the first
    attempt, the fraction recovered by a retry (the *delivery-after-
    retry* metric), and the fraction never delivered.  Ratios are over
    confirmed frames; all zeros when the run had none.
    """
    frames: Dict[tuple, List[Transmission]] = {}
    for tx in result.transmissions:
        if tx.confirmed:
            frames.setdefault(tx.key(), []).append(tx)
    total = len(frames)
    if total == 0:
        return {
            "confirmed_frames": 0,
            "first_attempt_ratio": 0.0,
            "after_retry_ratio": 0.0,
            "unrecovered_ratio": 0.0,
            "delivered_ratio": 0.0,
        }
    first = after = 0
    for attempts in frames.values():
        delivered = [t.attempt for t in attempts if result.delivered(t)]
        if not delivered:
            continue
        if min(delivered) == 0:
            first += 1
        else:
            after += 1
    return {
        "confirmed_frames": total,
        "first_attempt_ratio": first / total,
        "after_retry_ratio": after / total,
        "unrecovered_ratio": (total - first - after) / total,
        "delivered_ratio": (first + after) / total,
    }


def time_to_recover_s(
    result: SimulationResult,
    fault_start_s: float,
    window_s: float,
    bucket_s: float = 5.0,
    threshold: float = 0.9,
    network_id: Optional[int] = None,
) -> Optional[float]:
    """Time from a fault until the bucketed PRR is back above threshold.

    Scans the per-bucket PRR from the bucket containing
    ``fault_start_s``; the first bucket at or above ``threshold`` marks
    recovery, and the returned value is the start of that bucket minus
    the fault instant (clamped at 0.0 — a fault the network shrugs off
    within its own bucket has zero recovery time).  ``None`` means the
    network never recovered inside the window.
    """
    series = bucketed_prr(result, window_s, bucket_s, network_id=network_id)
    first_bucket = min(int(fault_start_s // bucket_s), len(series) - 1)
    for b in range(first_bucket, len(series)):
        if series[b] >= threshold:
            return max(0.0, b * bucket_s - fault_start_s)
    return None


def degraded_time_s(
    fault_plan: FaultPlan, window_s: Optional[float] = None
) -> float:
    """Total time any component of a fault plan is degraded.

    Overlapping windows (a gateway crash inside a Master outage) count
    once; open-ended degradations are clipped to ``window_s``.
    """
    return fault_plan.degraded_time_s(window_s)


def service_ratio(
    result: SimulationResult, network_id: int
) -> float:
    """Fraction of a network's *users* whose packets were delivered.

    The Figure 15 fairness metric: per-user service, not per-packet PRR.
    """
    users = {}
    for tx in result.transmissions:
        if tx.network_id != network_id:
            continue
        users.setdefault(tx.node_id, False)
        if result.delivered(tx):
            users[tx.node_id] = True
    if not users:
        return 0.0
    return sum(users.values()) / len(users)
