"""Confirmed-uplink retransmission over the online engine.

End-to-end delivery under faults: confirmed uplinks that fail to reach
their network server are re-sent with a LoRaWAN-style growing random
backoff (:class:`~repro.faults.retry.RetransmitPolicy`), until either a
copy is delivered, the retry budget runs out, or the retransmission
would fall outside the simulated window.

The driver iterates whole-window simulations: each round adds the
retransmissions scheduled after the previous round's failures and
re-evaluates — so re-sent packets contend for decoders and spectrum
exactly like first attempts (a retransmission storm after an outage is
itself a load spike, and the model captures that).  The final round's
:class:`~repro.sim.simulator.SimulationResult` is authoritative.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults.plan import FaultPlan, _stable_stream_seed
from ..faults.retry import RetransmitPolicy
from ..obs import runtime as _obs
from ..obs.events import EventType
from ..obs.profiling import span
from ..types import Transmission
from .engine import OnlineSimulator, Reconfiguration
from .simulator import SimulationResult

logger = logging.getLogger(__name__)

# Retry-depth histogram edges: one bucket per attempt up to the default
# LoRaWAN confirmed-uplink budget.
_RETRY_BUCKETS = (0, 1, 2, 3, 4, 5, 6, 7, 8)

__all__ = ["ResilientResult", "run_with_retransmissions"]

FrameKey = Tuple[int, int, int]  # (network, node, counter)


@dataclass
class ResilientResult:
    """Outcome of a window simulated with confirmed-uplink retries."""

    result: SimulationResult
    rounds: int
    retransmissions: List[Transmission] = field(default_factory=list)

    def frames(self) -> Dict[FrameKey, List[Transmission]]:
        """All attempts of each confirmed frame, by frame key."""
        out: Dict[FrameKey, List[Transmission]] = {}
        for tx in self.result.transmissions:
            if tx.confirmed:
                out.setdefault(tx.key(), []).append(tx)
        for attempts in out.values():
            attempts.sort(key=lambda t: t.attempt)
        return out

    def delivery_counts(self) -> Dict[str, int]:
        """Confirmed-frame accounting over the final simulation.

        ``first_attempt`` frames delivered on attempt 0,
        ``after_retry`` frames recovered by a retransmission, and
        ``unrecovered`` frames never delivered.
        """
        first = after = lost = 0
        for attempts in self.frames().values():
            delivered = [
                tx.attempt for tx in attempts if self.result.delivered(tx)
            ]
            if not delivered:
                lost += 1
            elif min(delivered) == 0:
                first += 1
            else:
                after += 1
        return {
            "first_attempt": first,
            "after_retry": after,
            "unrecovered": lost,
        }


def _device_for(sim: OnlineSimulator, tx: Transmission):
    return sim.devices.get((tx.network_id, tx.node_id))


def run_with_retransmissions(
    sim: OnlineSimulator,
    transmissions: Sequence[Transmission],
    reconfigurations: Sequence[Reconfiguration] = (),
    fault_plan: Optional[FaultPlan] = None,
    policy: RetransmitPolicy = RetransmitPolicy(),
    window_s: Optional[float] = None,
    rng: Optional[random.Random] = None,
    seed: int = 0,
) -> ResilientResult:
    """Simulate a window, re-sending failed confirmed uplinks.

    Args:
        sim: The online engine (its gateways/devices/link are used).
        transmissions: First-attempt traffic.
        reconfigurations: Gateway-side reconfiguration timeline.
        fault_plan: Injected faults, also seeding the backoff jitter.
        policy: Retransmission budget and backoff shape.
        window_s: Retransmissions starting after this instant are
            abandoned (device gives up at window end).  Defaults to the
            latest first-attempt end time.
        rng: Backoff jitter stream; defaults to the fault plan's
            ``"retransmit"`` sub-stream — or, without a plan, a stream
            derived from ``seed`` through the same stable hashing — so
            chaos and non-chaos runs stay independently reproducible
            from one scenario seed.
        seed: Scenario seed for the fallback backoff stream when
            neither ``rng`` nor ``fault_plan`` is given.

    Returns:
        A :class:`ResilientResult` whose ``result`` covers originals
        plus every retransmission actually sent.
    """
    if rng is None:
        if fault_plan is not None:
            rng = fault_plan.rng("retransmit")
        else:
            rng = random.Random(_stable_stream_seed(seed, "retransmit"))
    all_txs: List[Transmission] = list(transmissions)
    if window_s is None:
        window_s = max((tx.end_s for tx in all_txs), default=0.0)
    retransmissions: List[Transmission] = []
    # Frames that already exhausted their budget (or ran off-window).
    abandoned: set = set()
    rounds = 0
    with span("sim.retransmissions"):
        result = sim.run_online(
            all_txs, reconfigurations, fault_plan=fault_plan
        )
        while rounds < policy.max_retries:
            rounds += 1
            # Latest attempt of each undelivered confirmed frame.
            latest: Dict[FrameKey, Transmission] = {}
            delivered_keys = set()
            for tx in result.transmissions:
                if not tx.confirmed:
                    continue
                if result.delivered(tx):
                    delivered_keys.add(tx.key())
                    continue
                key = tx.key()
                prev = latest.get(key)
                if prev is None or tx.attempt > prev.attempt:
                    latest[key] = tx
            fresh: List[Transmission] = []
            for key in sorted(latest):
                if key in delivered_keys or key in abandoned:
                    continue
                tx = latest[key]
                if tx.attempt >= policy.max_retries:
                    abandoned.add(key)
                    continue
                device = _device_for(sim, tx)
                if device is None:
                    abandoned.add(key)
                    continue
                start_s = tx.end_s + policy.delay_s(tx.attempt + 1, rng)
                if start_s > window_s:
                    abandoned.add(key)
                    continue
                fresh.append(device.retransmit(tx, start_s))
            rec = _obs.TRACE
            if rec is not None:
                rec.emit(
                    EventType.RETX_ROUND,
                    round=rounds,
                    fresh=len(fresh),
                    abandoned=len(abandoned),
                )
            logger.debug(
                "retransmission round %d: %d fresh, %d abandoned",
                rounds,
                len(fresh),
                len(abandoned),
            )
            if not fresh:
                break
            retransmissions.extend(fresh)
            all_txs = sorted(all_txs + fresh, key=lambda t: t.start_s)
            result = sim.run_online(
                all_txs, reconfigurations, fault_plan=fault_plan
            )
    res = ResilientResult(
        result=result, rounds=rounds, retransmissions=retransmissions
    )
    metrics = _obs.METRICS
    if metrics is not None:
        depth = metrics.histogram(
            "repro_retry_depth",
            "attempts used per confirmed frame",
            buckets=_RETRY_BUCKETS,
        )
        for attempts in res.frames().values():
            depth.observe(max(tx.attempt for tx in attempts))
        metrics.counter(
            "repro_retransmissions_total",
            "confirmed-uplink retransmissions sent",
        ).inc(len(retransmissions))
    return res
