"""LMAC baseline: carrier-sense MAC for LoRa (Gamage et al. 2020).

LMAC avoids packet collisions by channel-activity detection before
transmitting.  We model its *effect* at the schedule level: given a
planned transmission set, packets that would collide (same channel,
same SF, overlapping on air) are deferred until the channel-SF pair is
free, plus a small seeded backoff.  Collisions disappear; decoder
contention does not — which is exactly why LMAC saturates in the
paper's Figure 13 once the user scale exceeds the decoder budget.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from ..phy.channels import Channel
from ..types import Transmission

__all__ = ["lmac_schedule"]

_BACKOFF_MAX_S = 0.02
# Maximum total deferral a node tolerates before transmitting anyway:
# LoRa nodes are energy-constrained and cannot carrier-sense forever,
# so under saturation LMAC's collision avoidance breaks down.
_MAX_DEFER_S = 2.0


def _channel_key(channel: Channel) -> Tuple[float, float]:
    return (round(channel.center_hz, 0), round(channel.bandwidth_hz, 0))


def lmac_schedule(
    transmissions: Sequence[Transmission],
    seed: int = 0,
    backoff_max_s: float = _BACKOFF_MAX_S,
    max_defer_s: float = _MAX_DEFER_S,
) -> List[Transmission]:
    """Reschedule transmissions with LMAC-style carrier sensing.

    Packets are processed in start order; each defers until its
    (channel, SF) medium is idle, up to ``max_defer_s`` — past that the
    node gives up sensing and transmits (a collision the avoidance
    cannot prevent under saturation).  Start times only ever move
    later, and the relative order per medium is preserved.

    Returns:
        A new transmission list sorted by (possibly deferred) start.
    """
    rng = random.Random(seed)
    busy_until: Dict[Tuple[Tuple[float, float], int], float] = {}
    out: List[Transmission] = []
    for tx in sorted(transmissions, key=lambda t: t.start_s):
        medium = (_channel_key(tx.channel), int(tx.sf))
        free_at = busy_until.get(medium, float("-inf"))
        start = tx.start_s
        if start < free_at:
            deferred = free_at + rng.uniform(0.0, backoff_max_s)
            if deferred - tx.start_s <= max_defer_s:
                start = deferred
        moved = replace(tx, start_s=start)
        busy_until[medium] = max(busy_until.get(medium, 0.0), moved.end_s)
        out.append(moved)
    out.sort(key=lambda t: t.start_s)
    return out
