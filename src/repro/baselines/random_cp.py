"""Random channel planning baseline (the paper's "Random CP").

Adjusts the number of channels per gateway following Strategy 1 (the
capacity-matched window size) but places the windows at *random* start
positions, without the joint optimization AlphaWAN performs.  Shows how
much of AlphaWAN's gain comes from planning rather than from merely
diversifying configurations.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..phy.channels import Channel
from ..sim.scenario import Network

__all__ = ["apply_random_cp"]

_NUM_DRS = 6


def apply_random_cp(
    network: Network,
    channels: Sequence[Channel],
    seed: int = 0,
    adjust_counts: bool = True,
    randomize_devices: bool = True,
) -> List[Tuple[int, int]]:
    """Apply randomized channel windows to a network's gateways.

    Args:
        network: The deployment to configure.
        channels: The operating spectrum's channel list.
        seed: RNG seed.
        adjust_counts: Follow Strategy 1's capacity-matched window
            size; when False gateways keep their hardware maximum.
        randomize_devices: Also scatter devices over the spectrum.

    Returns:
        The (start, count) window per gateway.
    """
    if not channels:
        raise ValueError("need at least one channel")
    rng = random.Random(seed)
    chans = list(channels)
    windows: List[Tuple[int, int]] = []
    for gw in network.gateways:
        max_count = min(
            gw.model.max_channels,
            max(1, int(gw.model.rx_spectrum_hz // 200_000)),
            len(chans),
        )
        if adjust_counts:
            count = min(max_count, max(1, -(-gw.model.decoders // _NUM_DRS)))
        else:
            count = max_count
        start = rng.randint(0, len(chans) - count)
        gw.configure(chans[start : start + count])
        windows.append((start, count))
    if randomize_devices:
        for dev in network.devices:
            dev.apply_config(channel=rng.choice(chans))
    return windows
