"""CIC baseline: Concurrent Interference Cancellation (SIGCOMM 2021).

CIC decodes multi-packet collisions with specialized PHY processing at
the gateway.  Following the paper's fairness protocol (section 5.2.1),
we grant CIC ideal collision resolution but keep the COTS decoder
constraint: each gateway still owns only its hardware decoder pool, so
decoder contention persists — the property that makes CIC saturate in
Figure 13.
"""

from __future__ import annotations

from typing import Sequence

from ..sim.scenario import Network

__all__ = ["enable_cic"]


def enable_cic(network: Network, enabled: bool = True) -> None:
    """Toggle CIC-style collision-resilient reception on every gateway.

    The gateways keep their decoder pools and FCFS dispatch; only the
    payload-decode stage becomes immune to co-channel interference.
    """
    for gw in network.gateways:
        gw.collision_resilient = enabled
