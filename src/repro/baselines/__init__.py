"""Baselines the paper evaluates against: standard LoRaWAN, Random CP,
standard ADR, LMAC (collision avoidance), CIC (collision resolution)."""

from __future__ import annotations

from .adr_baseline import apply_standard_adr, dr_distribution, gateways_per_node
from .cic import enable_cic
from .lmac import lmac_schedule
from .random_cp import apply_random_cp
from .standard import apply_standard_lorawan

__all__ = [
    "apply_standard_adr", "dr_distribution", "gateways_per_node",
    "enable_cic",
    "lmac_schedule",
    "apply_random_cp",
    "apply_standard_lorawan",
]
