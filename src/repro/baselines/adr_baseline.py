"""LoRaWAN-with-ADR baseline.

Runs the standard network-side ADR algorithm over measured (simulated)
link SNRs and pushes the resulting data-rate / TX-power assignments to
devices.  Reproduces the paper's section 4.2.3 observation: ADR shrinks
cells aggressively, concentrating >90 % of nodes on DR5 and
under-utilizing the orthogonal data-rate space.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from ..node.adr import adr_decision
from ..phy.lora import DataRate, DR_TO_SF, SNR_THRESHOLD_DB
from ..sim.scenario import Network
from ..sim.topology import LinkBudget

__all__ = ["apply_standard_adr", "dr_distribution", "gateways_per_node"]


def apply_standard_adr(
    network: Network,
    link: LinkBudget,
    margin_db: Optional[float] = None,
) -> None:
    """Run standard ADR for every device and apply the decisions.

    The "measured" SNR for a device is its best link SNR across the
    network's gateways at the current transmit power, as a real network
    server would read from uplink metadata.
    """
    for dev in network.devices:
        snrs = [
            link.snr_db(dev.tx_power_dbm, dev.position, gw.position)
            for gw in network.gateways
        ]
        if not snrs:
            continue
        kwargs = {} if margin_db is None else {"margin_db": margin_db}
        decision = adr_decision(
            max(snrs),
            current_dr=dev.dr,
            current_power_dbm=dev.tx_power_dbm,
            **kwargs,
        )
        dev.apply_config(dr=decision.dr, tx_power_dbm=decision.tx_power_dbm)


def dr_distribution(network: Network) -> Dict[DataRate, float]:
    """Fraction of devices per data rate (the Figure 6d/e pie)."""
    if not network.devices:
        return {}
    counts = Counter(dev.dr for dev in network.devices)
    total = len(network.devices)
    return {dr: counts.get(dr, 0) / total for dr in DataRate}


def gateways_per_node(network: Network, link: LinkBudget) -> float:
    """Mean number of gateways hearing each node at its current settings.

    The Figure 6c metric: without ADR each user occupies decoder
    resources at ~7 gateways; ADR cuts this to ~2.
    """
    if not network.devices:
        return 0.0
    total = 0
    for dev in network.devices:
        threshold = SNR_THRESHOLD_DB[DR_TO_SF[dev.dr]]
        total += sum(
            1
            for gw in network.gateways
            if link.snr_db(dev.tx_power_dbm, dev.position, gw.position)
            >= threshold
        )
    return total / len(network.devices)
