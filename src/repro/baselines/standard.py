"""Standard-LoRaWAN baseline: homogeneous channel plans.

Operators today pick one of the predefined channel plans (Figure 19) and
configure every gateway identically.  When the operating spectrum spans
several plans, gateways are spread round-robin across the plans (the
paper's Figure 12a baseline uses three standard plans over 24 channels)
— but every gateway *within* a plan still observes the same packets in
the same order, so each plan group is capped by a single decoder pool.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..phy.channels import ChannelGrid, ChannelPlan, standard_plans
from ..sim.scenario import Network

__all__ = ["apply_standard_lorawan"]


def apply_standard_lorawan(
    network: Network,
    grid: ChannelGrid,
    seed: int = 0,
    randomize_devices: bool = True,
) -> List[ChannelPlan]:
    """Configure a network the way commercial operators run it today.

    Gateways take the standard plans round-robin; devices pick a random
    channel from the full grid (their uplinks are only heard by the
    plan group covering that channel).

    Returns:
        The standard plans used.
    """
    plans = standard_plans(grid)
    rng = random.Random(seed)
    for j, gw in enumerate(network.gateways):
        plan = plans[j % len(plans)]
        gw.configure(list(plan.channels))
    if randomize_devices:
        all_channels = grid.channels()
        for dev in network.devices:
            dev.apply_config(channel=rng.choice(all_channels))
    return plans
