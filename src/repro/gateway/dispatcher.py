"""The FCFS decoder dispatcher (Appendix C, Figure 20b).

Detections from all receive channels are merged and served strictly in
lock-on order.  A detection either seizes a free decoder for the rest of
the packet's airtime or is dropped on the spot.  The dispatcher records
*who held the decoders* at every rejection so that losses can later be
attributed to intra- versus inter-network decoder contention (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..obs import runtime as _obs
from ..obs.events import EventType
from ..obs.perf import Phase, phase_timed
from ..obs.profiling import span
from .decoder import DecoderLease, DecoderPool
from .detector import Detection

__all__ = ["DispatchResult", "FcfsDispatcher"]


@dataclass(frozen=True)
class DispatchResult:
    """Outcome of dispatching one detection."""

    detection: Detection
    lease: Optional[DecoderLease]
    # Snapshot of decoder holders at the rejection instant (empty when
    # the packet was admitted); used for contention attribution.
    blockers: Tuple[DecoderLease, ...] = ()

    @property
    def admitted(self) -> bool:
        """Whether the packet obtained a decoder."""
        return self.lease is not None


class FcfsDispatcher:
    """Serves detections to a decoder pool in First-Come-First-Served order."""

    def __init__(self, pool: DecoderPool) -> None:
        self.pool = pool

    def dispatch(self, detections: Sequence[Detection]) -> List[DispatchResult]:
        """Dispatch a batch of detections.

        Args:
            detections: Detections in any order; they are sorted by
                lock-on time (ties broken by node id for determinism)
                before being offered to the pool, mirroring the hardware
                dispatcher's arrival order.

        Returns:
            One :class:`DispatchResult` per detection, in dispatch order.
        """
        ordered = sorted(
            detections,
            key=lambda d: (d.lock_on_s, d.tx.network_id, d.tx.node_id),
        )
        results: List[DispatchResult] = []
        with span("gw.dispatch"), phase_timed(
            Phase.DISPATCH, items=len(ordered)
        ):
            for det in ordered:
                tx = det.tx
                blockers: Tuple[DecoderLease, ...] = ()
                lease = self.pool.try_allocate(
                    det.lock_on_s, tx.end_s, tx.network_id, tx.node_id
                )
                if lease is None:
                    blockers = tuple(self.pool.holders(det.lock_on_s))
                rec = _obs.TRACE
                if rec is not None:
                    gw = self.pool.trace_gateway_id
                    if lease is not None:
                        rec.emit(
                            EventType.DECODER_GRANT,
                            t=det.lock_on_s,
                            gw=gw,
                            dec=lease.decoder_index,
                            until=lease.release_s,
                            net=tx.network_id,
                            node=tx.node_id,
                            ctr=tx.counter,
                            att=tx.attempt,
                        )
                    else:
                        rec.emit(
                            EventType.DECODER_REJECT,
                            t=det.lock_on_s,
                            gw=gw,
                            net=tx.network_id,
                            node=tx.node_id,
                            ctr=tx.counter,
                            att=tx.attempt,
                            blockers=[
                                b.holder_network_id for b in blockers
                            ],
                        )
                results.append(
                    DispatchResult(detection=det, lease=lease, blockers=blockers)
                )
        return results
