"""Packet detection: front-end channel matching and preamble lock-on.

The first stage of the Appendix-C reception pipeline.  A packet enters
the decode pipeline only if (1) a configured receive channel is aligned
with its carrier — the radio's *frequency selectivity* truncates
misaligned signals — and (2) the preamble is strong enough to detect.
Only packets passing both gates ever contend for decoders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..phy.channels import Channel, overlap_ratio
from ..phy.interference import DETECTION_MIN_OVERLAP
from ..phy.link import noise_floor_dbm
from ..phy.lora import SNR_THRESHOLD_DB
from ..types import Observation, Transmission

__all__ = ["Detection", "match_rx_channel", "detect"]


@dataclass(frozen=True)
class Detection:
    """A packet that passed front-end matching and preamble detection."""

    observation: Observation
    rx_channel: Channel
    lock_on_s: float
    snr_db: float

    @property
    def tx(self) -> Transmission:
        """The underlying transmission."""
        return self.observation.transmission


def match_rx_channel(
    packet_channel: Channel,
    rx_channels: Sequence[Channel],
    min_overlap: float = DETECTION_MIN_OVERLAP,
) -> Optional[Channel]:
    """Find the receive channel (if any) that passes this packet.

    Returns the configured channel with the highest spectral overlap,
    provided the overlap reaches ``min_overlap``; otherwise ``None`` —
    the front-end truncates the signal and the packet is invisible to
    the rest of the pipeline.
    """
    best: Optional[Channel] = None
    best_overlap = 0.0
    for rx in rx_channels:
        ov = overlap_ratio(packet_channel, rx)
        if ov > best_overlap:
            best, best_overlap = rx, ov
    if best is not None and best_overlap >= min_overlap:
        return best
    return None


def detect(
    observation: Observation,
    rx_channels: Sequence[Channel],
    noise_figure_db: float = 6.0,
    min_overlap: float = DETECTION_MIN_OVERLAP,
) -> Optional[Detection]:
    """Run front-end matching and preamble detection for one packet.

    Detection is SNR-gated against the spreading factor's demodulation
    threshold (noise only): the paper's section 3.1 shows the gateway
    treats every detectable packet identically regardless of SNR level
    or channel crowdedness, so no prioritization happens here.

    Returns:
        A :class:`Detection` with the lock-on timestamp, or ``None`` if
        the packet cannot be seen by this gateway at all.
    """
    tx = observation.transmission
    rx_channel = match_rx_channel(tx.channel, rx_channels, min_overlap)
    if rx_channel is None:
        return None
    noise = noise_floor_dbm(tx.channel.bandwidth_hz, noise_figure_db)
    snr = observation.rssi_dbm - noise
    if snr < SNR_THRESHOLD_DB[tx.sf]:
        return None
    return Detection(
        observation=observation,
        rx_channel=rx_channel,
        lock_on_s=tx.lock_on_s,
        snr_db=snr,
    )
