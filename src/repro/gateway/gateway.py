"""The complete COTS gateway reception model.

Chains the Appendix-C pipeline stages: RF front-end channel matching and
preamble detection (:mod:`.detector`), FCFS decoder dispatch
(:mod:`.dispatcher`, :mod:`.decoder`), payload decoding under
interference (:mod:`repro.phy.interference`), and finally the sync-word
network filter — which, crucially, runs *after* decoding, so foreign
packets consume decoder resources before being discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import runtime as _obs
from ..obs.events import EventType
from ..obs.perf import Phase, phase_timed
from ..phy.channels import Channel, overlap_hz
from ..phy.interference import Interferer, decode_ok
from ..phy.link import Position, noise_floor_dbm
from ..types import Observation, Transmission, time_overlap_s
from .decoder import DecoderPool
from .detector import Detection, detect, match_rx_channel
from .dispatcher import FcfsDispatcher
from .models import GatewayModel, get_model

__all__ = ["Outcome", "GatewayReception", "Gateway"]


def _obs_start_s(obs: Observation) -> float:
    """Sort key for the interference time index (hoisted: hot path)."""
    return obs.transmission.start_s


class Outcome(Enum):
    """Fate of a packet at one gateway."""

    RECEIVED = "received"
    FILTERED_FOREIGN = "filtered_foreign"  # decoded, wrong sync word
    DECODE_FAILED = "decode_failed"        # collision / interference
    NO_DECODER = "no_decoder"              # dropped by the dispatcher
    BELOW_SENSITIVITY = "below_sensitivity"
    CHANNEL_MISMATCH = "channel_mismatch"  # front-end truncated
    GATEWAY_OFFLINE = "gateway_offline"    # radio dark (crash / reboot)
    BACKHAUL_LOST = "backhaul_lost"        # decoded, lost gateway->server


@dataclass(frozen=True)
class GatewayReception:
    """Per-packet reception record at one gateway."""

    gateway_id: int
    transmission: Transmission
    outcome: Outcome
    rx_channel: Optional[Channel] = None
    snr_db: Optional[float] = None
    lock_on_s: Optional[float] = None
    # Networks holding the decoders when this packet was rejected
    # (only for NO_DECODER outcomes): used to attribute contention.
    blocker_network_ids: Tuple[int, ...] = ()
    # Extra gateway->server latency from an injected backhaul fault
    # (only for RECEIVED outcomes under a FaultPlan).
    backhaul_delay_s: float = 0.0

    @property
    def received(self) -> bool:
        """Whether the packet was successfully delivered to the backhaul."""
        return self.outcome is Outcome.RECEIVED


class Gateway:
    """A LoRaWAN gateway: position, network, channel config, decoder pool.

    Args:
        gateway_id: Unique identifier.
        network_id: Operator network this gateway forwards for.
        position: Physical location (drives link budgets in the sim).
        model: Hardware model (decoder count, spectrum limits).
        channels: Operating receive channels; must respect the model's
            channel-count and spectrum-span limits.
        noise_figure_db: Receiver noise figure.
        collision_resilient: Model a CIC-style gateway (SIGCOMM'21) that
            resolves co-channel collisions in PHY processing — packets
            above the noise threshold decode despite interference.  The
            decoder-pool constraint still applies (the paper's fairness
            condition when comparing against CIC in section 5.2.1).
    """

    def __init__(
        self,
        gateway_id: int,
        network_id: int,
        position: Position,
        channels: Sequence[Channel],
        model: Optional[GatewayModel] = None,
        noise_figure_db: float = 6.0,
        collision_resilient: bool = False,
    ) -> None:
        self.gateway_id = gateway_id
        self.network_id = network_id
        self.position = position
        self.model = model or get_model()
        self.noise_figure_db = noise_figure_db
        self.collision_resilient = collision_resilient
        self._channels: Tuple[Channel, ...] = ()
        self.configure(channels)
        self.pool = DecoderPool(self.model.decoders)
        self.pool.trace_gateway_id = gateway_id
        self.reboots = 0

    @property
    def channels(self) -> Tuple[Channel, ...]:
        """The configured receive channels (sorted by frequency)."""
        return self._channels

    def configure(self, channels: Sequence[Channel]) -> None:
        """Apply a new channel configuration (validated against hardware).

        Raises:
            ValueError: if the configuration exceeds the model's channel
                count or receive-spectrum span.
        """
        chans = tuple(sorted(channels))
        if not chans:
            raise ValueError("a gateway needs at least one receive channel")
        if len(chans) > self.model.max_channels:
            raise ValueError(
                f"{len(chans)} channels exceed the {self.model.name} limit "
                f"of {self.model.max_channels}"
            )
        span = chans[-1].high_hz - chans[0].low_hz
        if span > self.model.rx_spectrum_hz + 1.0:
            raise ValueError(
                f"channel span {span / 1e6:.2f} MHz exceeds the "
                f"{self.model.name} receive spectrum of "
                f"{self.model.rx_spectrum_hz / 1e6:.2f} MHz"
            )
        self._channels = chans

    def reboot(self) -> None:
        """Reboot the gateway (clears the decoder pool); counted for latency."""
        self.pool.reset()
        self.reboots += 1
        metrics = _obs.METRICS
        if metrics is not None:
            metrics.counter(
                "repro_gateway_reboots_total",
                "gateway reboots (reconfigurations and crashes)",
                gateway=self.gateway_id,
            ).inc()

    # Frequency bucket width for the interference index.  Signals more
    # than one channel spacing away cannot overlap a 125/250/500 kHz
    # passband, so each packet only inspects its own and adjacent buckets.
    _BUCKET_HZ = 200_000.0

    @classmethod
    def _build_time_index(
        cls, observations: Sequence[Observation]
    ) -> Dict[int, Tuple[List[Observation], List[float], float]]:
        """Index observations by frequency bucket and start time.

        Keeps the scaled-operation scenarios (tens of thousands of
        packets) near linear: interference lookups scan only
        time-adjacent packets in frequency-adjacent buckets.
        """
        buckets: Dict[int, List[Observation]] = {}
        for obs in observations:
            key = int(obs.transmission.channel.center_hz // cls._BUCKET_HZ)
            buckets.setdefault(key, []).append(obs)
        index: Dict[int, Tuple[List[Observation], List[float], float]] = {}
        for key, group in buckets.items():
            group.sort(key=_obs_start_s)
            starts = [_obs_start_s(o) for o in group]
            max_airtime = max(o.transmission.airtime_s for o in group)
            index[key] = (group, starts, max_airtime)
        return index

    def _interferers_for(
        self,
        det: Detection,
        index: Dict[int, Tuple[List[Observation], List[float], float]],
    ) -> List[Interferer]:
        """Concurrent transmissions adding energy into ``det``'s passband."""
        from bisect import bisect_left, bisect_right

        me = det.tx
        center_key = int(me.channel.center_hz // self._BUCKET_HZ)
        interferers: List[Interferer] = []
        for key in (center_key - 1, center_key, center_key + 1):
            entry = index.get(key)
            if entry is None:
                continue
            ordered, starts, max_airtime = entry
            lo = bisect_left(starts, me.start_s - max_airtime)
            hi = bisect_right(starts, me.end_s)
            for obs in ordered[lo:hi]:
                other = obs.transmission
                if other is me:
                    continue
                if time_overlap_s(me, other) <= 0.0:
                    continue
                if overlap_hz(me.channel, other.channel) <= 0.0:
                    continue
                interferers.append(
                    Interferer(
                        rssi_dbm=obs.rssi_dbm,
                        sf=other.sf,
                        channel=other.channel,
                        same_network=other.network_id == me.network_id,
                    )
                )
        return interferers

    def receive(
        self, observations: Sequence[Observation]
    ) -> List[GatewayReception]:
        """Process a batch of concurrent/overlapping observations.

        The batch should contain *every* transmission audible at this
        gateway within the simulated window (including foreign-network
        and below-sensitivity ones): they all shape detection, decoder
        occupancy, and interference.

        Returns:
            One reception record per observation, in input order.
        """
        self.pool.reset()
        index = self._build_time_index(observations)
        detections: List[Detection] = []
        prelim: Dict[int, GatewayReception] = {}
        rec_trace = _obs.TRACE

        with phase_timed(Phase.DETECT, items=len(observations)):
            for idx, obs in enumerate(observations):
                tx = obs.transmission
                det = detect(
                    obs, self._channels, noise_figure_db=self.noise_figure_db
                )
                if det is not None:
                    detections.append(det)
                    prelim[idx] = None  # resolved by dispatch below
                    if rec_trace is not None:
                        rec_trace.emit(
                            EventType.GW_LOCK_ON,
                            t=det.lock_on_s,
                            gw=self.gateway_id,
                            net=tx.network_id,
                            node=tx.node_id,
                            ctr=tx.counter,
                            att=tx.attempt,
                            snr_db=det.snr_db,
                        )
                    continue
                if match_rx_channel(tx.channel, self._channels) is None:
                    outcome = Outcome.CHANNEL_MISMATCH
                else:
                    outcome = Outcome.BELOW_SENSITIVITY
                prelim[idx] = GatewayReception(
                    gateway_id=self.gateway_id,
                    transmission=tx,
                    outcome=outcome,
                )

        results_by_tx: Dict[tuple, GatewayReception] = {}
        dispatcher = FcfsDispatcher(self.pool)
        dispatched = dispatcher.dispatch(detections)
        with phase_timed(Phase.DECODE, items=len(dispatched)):
            for res in dispatched:
                det = res.detection
                tx = det.tx
                if not res.admitted:
                    record = GatewayReception(
                        gateway_id=self.gateway_id,
                        transmission=tx,
                        outcome=Outcome.NO_DECODER,
                        rx_channel=det.rx_channel,
                        snr_db=det.snr_db,
                        lock_on_s=det.lock_on_s,
                        blocker_network_ids=tuple(
                            lease.holder_network_id for lease in res.blockers
                        ),
                    )
                else:
                    noise = noise_floor_dbm(
                        tx.channel.bandwidth_hz, self.noise_figure_db
                    )
                    if self.collision_resilient:
                        # CIC-style PHY: interference is resolved, only
                        # the noise threshold matters (already checked
                        # at detection time).
                        ok = True
                    else:
                        ok = decode_ok(
                            det.observation.rssi_dbm,
                            noise,
                            tx.sf,
                            det.rx_channel,
                            self._interferers_for(det, index),
                        )
                    if not ok:
                        outcome = Outcome.DECODE_FAILED
                    elif tx.network_id != self.network_id:
                        outcome = Outcome.FILTERED_FOREIGN
                    else:
                        outcome = Outcome.RECEIVED
                    record = GatewayReception(
                        gateway_id=self.gateway_id,
                        transmission=tx,
                        outcome=outcome,
                        rx_channel=det.rx_channel,
                        snr_db=det.snr_db,
                        lock_on_s=det.lock_on_s,
                    )
                results_by_tx[self._tx_key(tx)] = record

        out: List[GatewayReception] = []
        metrics = _obs.METRICS
        with phase_timed(Phase.EMIT, items=len(observations)):
            for idx, obs in enumerate(observations):
                rec = prelim[idx]
                if rec is None:
                    rec = results_by_tx[self._tx_key(obs.transmission)]
                out.append(rec)
                tx = rec.transmission
                if rec_trace is not None:
                    rec_trace.emit(
                        EventType.GW_RECEPTION,
                        t=tx.start_s,
                        gw=self.gateway_id,
                        net=tx.network_id,
                        node=tx.node_id,
                        ctr=tx.counter,
                        att=tx.attempt,
                        outcome=rec.outcome.value,
                    )
                if metrics is not None:
                    metrics.counter(
                        "repro_outcomes_total",
                        "per-gateway reception outcomes",
                        outcome=rec.outcome.value,
                    ).inc()
        return out

    @staticmethod
    def _tx_key(tx: Transmission) -> tuple:
        return (tx.network_id, tx.node_id, tx.counter, tx.start_s)

    def __repr__(self) -> str:
        freqs = ", ".join(f"{c.center_hz / 1e6:.4f}" for c in self._channels)
        return (
            f"Gateway(id={self.gateway_id}, net={self.network_id}, "
            f"model={self.model.name}, channels=[{freqs}] MHz)"
        )
