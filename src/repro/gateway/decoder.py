"""The finite decoder pool of a LoRaWAN gateway.

Semtech SX130x concentrators expose a fixed number of packet decoders
(8, 16 or 32 depending on the chipset — Table 4).  A decoder is seized
when the dispatcher admits a packet at its lock-on instant and is
released when the packet's airtime ends.  When every decoder is busy,
later packets are dropped: the *decoder contention problem*.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..obs import runtime as _obs
from ..obs.events import EventType

__all__ = ["DecoderLease", "DecoderPool"]

# Decoder-occupancy histogram edges: one bucket per power-of-two pool
# size up to the largest COTS concentrator (Table 4).
_OCCUPANCY_BUCKETS = (0, 1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class DecoderLease:
    """A successful decoder allocation."""

    decoder_index: int
    start_s: float
    release_s: float
    holder_network_id: int
    holder_node_id: int


class DecoderPool:
    """A pool of ``capacity`` decoders allocated in lock-on order.

    The pool must be driven with non-decreasing allocation times (the
    dispatcher guarantees FCFS order); it keeps a min-heap of busy
    decoders keyed by release time.

    Attributes:
        capacity: Number of hardware decoders.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"decoder pool needs >= 1 decoder, got {capacity}")
        self.capacity = capacity
        # Heap of (release_s, lease) for busy decoders.
        self._busy: List[Tuple[float, int, DecoderLease]] = []
        self._free_indices: List[int] = list(range(capacity))
        self._last_alloc_s = float("-inf")
        self._seq = 0
        self.total_allocations = 0
        self.total_rejections = 0
        self.busy_time_s = 0.0
        # Gateway this pool belongs to, for trace attribution (set by
        # the owning Gateway; -1 for free-standing pools in tests).
        self.trace_gateway_id: int = -1

    def _reclaim(self, now_s: float) -> None:
        """Release every decoder whose packet has finished by ``now_s``."""
        while self._busy and self._busy[0][0] <= now_s:
            release_s, _, lease = heapq.heappop(self._busy)
            # Decoders above a shrunken capacity retire on release
            # instead of returning to the free list.
            if lease.decoder_index < self.capacity:
                heapq.heappush(self._free_indices, lease.decoder_index)
            rec = _obs.TRACE
            if rec is not None:
                rec.emit(
                    EventType.DECODER_RECLAIM,
                    t=release_s,
                    gw=self.trace_gateway_id,
                    dec=lease.decoder_index,
                )

    def busy_count(self, now_s: float) -> int:
        """Number of decoders occupied at ``now_s`` (after reclaiming)."""
        self._reclaim(now_s)
        return len(self._busy)

    def resize(self, capacity: int) -> None:
        """Change the pool size in place (decoder-degradation faults).

        Shrinking lets busy decoders drain naturally — their packets
        complete, but the freed units above the new capacity retire.
        Growing brings fresh decoders online immediately.
        """
        if capacity < 1:
            raise ValueError(f"decoder pool needs >= 1 decoder, got {capacity}")
        if capacity > self.capacity:
            # A unit still draining from a pre-shrink lease must not be
            # handed out twice; it re-joins the free list on release.
            draining = {lease.decoder_index for _, _, lease in self._busy}
            self._free_indices.extend(
                i for i in range(self.capacity, capacity) if i not in draining
            )
        else:
            self._free_indices = [
                i for i in self._free_indices if i < capacity
            ]
        heapq.heapify(self._free_indices)
        self.capacity = capacity

    def holders(self, now_s: float) -> List[DecoderLease]:
        """Leases of the decoders busy at ``now_s``."""
        self._reclaim(now_s)
        return [lease for _, _, lease in self._busy]

    def try_allocate(
        self,
        now_s: float,
        release_s: float,
        network_id: int,
        node_id: int,
    ) -> Optional[DecoderLease]:
        """Attempt to seize a decoder at ``now_s`` until ``release_s``.

        Returns the lease, or ``None`` when every decoder is occupied
        (the packet is dropped, never to be retried — COTS gateways have
        no retry path for a missed lock-on).

        Raises:
            ValueError: if called with a time earlier than a previous
                allocation (the dispatcher must process in FCFS order).
        """
        if now_s < self._last_alloc_s:
            raise ValueError(
                f"allocations must be in FCFS order: {now_s} < {self._last_alloc_s}"
            )
        if release_s < now_s:
            raise ValueError("release time precedes allocation time")
        self._last_alloc_s = now_s
        self._reclaim(now_s)
        metrics = _obs.METRICS
        if metrics is not None:
            metrics.histogram(
                "repro_decoder_occupancy",
                "busy decoders at each allocation attempt",
                buckets=_OCCUPANCY_BUCKETS,
                gateway=self.trace_gateway_id,
            ).observe(len(self._busy))
        if not self._free_indices:
            self.total_rejections += 1
            if metrics is not None:
                metrics.counter(
                    "repro_decoder_rejections_total",
                    "packets dropped for lack of a free decoder",
                    gateway=self.trace_gateway_id,
                ).inc()
            return None
        index = heapq.heappop(self._free_indices)
        lease = DecoderLease(
            decoder_index=index,
            start_s=now_s,
            release_s=release_s,
            holder_network_id=network_id,
            holder_node_id=node_id,
        )
        self._seq += 1
        heapq.heappush(self._busy, (release_s, self._seq, lease))
        self.total_allocations += 1
        self.busy_time_s += release_s - now_s
        if metrics is not None:
            metrics.counter(
                "repro_decoder_allocations_total",
                "decoder leases granted",
                gateway=self.trace_gateway_id,
            ).inc()
        return lease

    def reset(self) -> None:
        """Return the pool to its initial (all-free) state."""
        self._busy.clear()
        self._free_indices = list(range(self.capacity))
        self._last_alloc_s = float("-inf")
        self._seq = 0
        self.total_allocations = 0
        self.total_rejections = 0
        self.busy_time_s = 0.0
