"""Catalog of COTS LoRaWAN gateway models (paper Table 4).

Each entry records the radio resources that bound a gateway's practical
capacity: receive spectrum width, Rx chains, and — decisively — the
number of hardware packet decoders.  None of the commercial models has
enough decoders to cover the theoretical capacity of its spectrum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["GatewayModel", "COTS_CATALOG", "get_model", "NUM_ORTHOGONAL_DRS"]

# Orthogonal data rates usable concurrently per 125 kHz channel (DR0-DR5).
NUM_ORTHOGONAL_DRS = 6


@dataclass(frozen=True)
class GatewayModel:
    """Hardware description of a gateway product.

    Attributes:
        name: Product name.
        manufacturer: Vendor.
        chipset: Semtech baseband chipset.
        rx_spectrum_hz: Maximum simultaneous receive span (``B_j``).
        rx_chains: Multi-SF receive chains (the "+1" LoRa-service chain
            in datasheets is listed separately in ``aux_chains``).
        aux_chains: Single-SF service / FSK chains.
        decoders: Hardware packet decoders (``C_j``).
        max_channels: Concurrent receive channels (``P_j``).
    """

    name: str
    manufacturer: str
    chipset: str
    rx_spectrum_hz: float
    rx_chains: int
    aux_chains: int
    decoders: int
    max_channels: int

    @property
    def theoretical_capacity(self) -> int:
        """Concurrent users the spectrum could carry with unlimited decoders.

        Every 125 kHz channel supports :data:`NUM_ORTHOGONAL_DRS`
        orthogonal data rates; the aux chains add one stream each
        (matching the paper's Table 4 figure of 54 for 1.6 MHz radios:
        8 channels x 6 DRs + 6 for the service chain).
        """
        return self.rx_chains * NUM_ORTHOGONAL_DRS + self.aux_chains * NUM_ORTHOGONAL_DRS

    @property
    def practical_capacity(self) -> int:
        """Concurrent users actually receivable: the decoder count."""
        return self.decoders


COTS_CATALOG: Dict[str, GatewayModel] = {
    model.name: model
    for model in (
        GatewayModel(
            name="LPS8N",
            manufacturer="Dragino",
            chipset="SX1302",
            rx_spectrum_hz=1.6e6,
            rx_chains=8,
            aux_chains=1,
            decoders=16,
            max_channels=8,
        ),
        GatewayModel(
            name="LPS8V2",
            manufacturer="Dragino",
            chipset="SX1302",
            rx_spectrum_hz=1.6e6,
            rx_chains=8,
            aux_chains=1,
            decoders=16,
            max_channels=8,
        ),
        GatewayModel(
            name="RAK7246G",
            manufacturer="RAKwireless",
            chipset="SX1308",
            rx_spectrum_hz=1.6e6,
            rx_chains=8,
            aux_chains=1,
            decoders=8,
            max_channels=8,
        ),
        GatewayModel(
            name="RAK7268CV2",
            manufacturer="RAKwireless",
            chipset="SX1302",
            rx_spectrum_hz=1.6e6,
            rx_chains=8,
            aux_chains=1,
            decoders=16,
            max_channels=8,
        ),
        GatewayModel(
            name="RAK7289CV2",
            manufacturer="RAKwireless",
            chipset="SX1303",
            rx_spectrum_hz=3.2e6,
            rx_chains=16,
            aux_chains=2,
            decoders=32,
            max_channels=16,
        ),
        GatewayModel(
            name="Wirnet iBTS",
            manufacturer="Kerlink",
            chipset="SX1301",
            rx_spectrum_hz=1.6e6,
            rx_chains=8,
            aux_chains=1,
            decoders=8,
            max_channels=8,
        ),
        GatewayModel(
            name="Wirnet iFemtoCell",
            manufacturer="Kerlink",
            chipset="SX1301",
            rx_spectrum_hz=1.6e6,
            rx_chains=8,
            aux_chains=1,
            decoders=8,
            max_channels=8,
        ),
    )
}

# The paper's case-study gateway (section 3.1).
DEFAULT_MODEL_NAME = "RAK7268CV2"


def get_model(name: str = DEFAULT_MODEL_NAME) -> GatewayModel:
    """Look up a catalog model by product name."""
    try:
        return COTS_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(COTS_CATALOG))
        raise KeyError(f"unknown gateway model {name!r}; known models: {known}")
