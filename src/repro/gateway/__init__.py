"""COTS gateway model: detection, FCFS dispatch, finite decoder pool."""

from __future__ import annotations

from .decoder import DecoderLease, DecoderPool
from .detector import Detection, detect, match_rx_channel
from .dispatcher import DispatchResult, FcfsDispatcher
from .gateway import Gateway, GatewayReception, Outcome
from .models import (
    COTS_CATALOG,
    DEFAULT_MODEL_NAME,
    GatewayModel,
    NUM_ORTHOGONAL_DRS,
    get_model,
)

__all__ = [
    "DecoderLease", "DecoderPool",
    "Detection", "detect", "match_rx_channel",
    "DispatchResult", "FcfsDispatcher",
    "Gateway", "GatewayReception", "Outcome",
    "COTS_CATALOG", "DEFAULT_MODEL_NAME", "GatewayModel",
    "NUM_ORTHOGONAL_DRS", "get_model",
]
