"""Closed-form capacity bounds used throughout the paper's arguments.

Three ceilings govern a LoRaWAN deployment's concurrent-user capacity:

* the **spectrum bound** — channels × orthogonal data rates;
* the **decoder bound** — the aggregate decoder pools of the gateways,
  discounted by how many gateways redundantly hear each packet;
* the **effective capacity** — the minimum of the two, which AlphaWAN's
  planning approaches and standard LoRaWAN does not.
"""

from __future__ import annotations

from typing import Sequence

from ..gateway.gateway import Gateway
from ..gateway.models import NUM_ORTHOGONAL_DRS

__all__ = [
    "spectrum_bound",
    "decoder_bound",
    "effective_capacity_bound",
    "standard_lorawan_bound",
]


def spectrum_bound(num_channels: int, num_drs: int = NUM_ORTHOGONAL_DRS) -> int:
    """Theoretical concurrent users of a spectrum block (the Oracle)."""
    if num_channels < 0 or num_drs < 0:
        raise ValueError("counts must be non-negative")
    return num_channels * num_drs


def decoder_bound(
    gateways: Sequence[Gateway], redundancy: float = 1.0
) -> float:
    """Aggregate decoder ceiling across gateways.

    ``redundancy`` is the mean number of gateways that hear (and hence
    spend a decoder on) each packet: 1.0 with perfectly disjoint
    channel windows, up to ``len(gateways)`` with homogeneous plans.
    """
    if redundancy < 1.0:
        raise ValueError("each packet occupies at least one gateway")
    total = sum(gw.model.decoders for gw in gateways)
    return total / redundancy


def effective_capacity_bound(
    gateways: Sequence[Gateway],
    num_channels: int,
    redundancy: float = 1.0,
) -> float:
    """min(spectrum bound, decoder bound): what planning can achieve."""
    return min(
        float(spectrum_bound(num_channels)),
        decoder_bound(gateways, redundancy),
    )


def standard_lorawan_bound(
    gateways: Sequence[Gateway], num_channels: int
) -> float:
    """Capacity ceiling of today's homogeneous standard plans.

    Gateways sharing a plan observe identical packets in the same order
    and admit the same first-k: each plan group contributes a single
    decoder pool regardless of its size.  With P standard plans, the
    ceiling is ``P x decoders-per-gateway`` (the paper's 48 = 3 x 16 for
    a 4.8 MHz band), further capped by the spectrum bound.
    """
    if not gateways:
        return 0.0
    plans = max(num_channels // 8, 1)
    per_pool = gateways[0].model.decoders
    return min(float(plans * per_pool), float(spectrum_bound(num_channels)))
