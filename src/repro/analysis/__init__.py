"""Analytical companions: Erlang-B decoder blocking and capacity bounds."""

from __future__ import annotations

from .bounds import (
    decoder_bound,
    effective_capacity_bound,
    spectrum_bound,
    standard_lorawan_bound,
)
from .erlang import (
    capacity_for_blocking,
    erlang_b,
    expected_decoder_loss,
    offered_load,
)

__all__ = [
    "decoder_bound", "effective_capacity_bound", "spectrum_bound",
    "standard_lorawan_bound",
    "capacity_for_blocking", "erlang_b", "expected_decoder_loss",
    "offered_load",
]
