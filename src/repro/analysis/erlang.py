"""Queueing-theoretic companion: the decoder pool as an Erlang loss system.

A gateway's decoder pool is an M/G/c/c system: packets arrive (Poisson
at rate λ), hold a decoder for their airtime (service time T), and are
*blocked* — dropped, never queued — when all ``c`` decoders are busy.
The blocking probability is the Erlang-B formula

    B(a, c) = (a^c / c!) / Σ_{k=0..c} a^k / k!,   a = λ·T (offered load)

which is insensitive to the service-time distribution — exactly why the
decoder contention problem is governed by *offered concurrent load*
(the CP problem's ``u_i``) and not by packet-size details.  The test
suite validates the simulator's decoder-drop rate against this formula.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = [
    "erlang_b",
    "offered_load",
    "capacity_for_blocking",
    "expected_decoder_loss",
]


def erlang_b(offered: float, servers: int) -> float:
    """Erlang-B blocking probability for ``offered`` load on ``servers``.

    Uses the numerically stable recurrence
    ``B(a, 0) = 1;  B(a, c) = a·B(a, c-1) / (c + a·B(a, c-1))``.
    """
    if offered < 0:
        raise ValueError("offered load must be non-negative")
    if servers < 0:
        raise ValueError("server count must be non-negative")
    b = 1.0
    for c in range(1, servers + 1):
        b = offered * b / (c + offered * b)
    return b


def offered_load(arrival_rate_hz: float, airtime_s: float) -> float:
    """Offered load ``a = λ·T`` in Erlangs."""
    if arrival_rate_hz < 0 or airtime_s < 0:
        raise ValueError("rate and airtime must be non-negative")
    return arrival_rate_hz * airtime_s


def capacity_for_blocking(
    servers: int, target_blocking: float, tolerance: float = 1e-6
) -> float:
    """Largest offered load a pool can carry at a blocking target.

    The planning-side inverse of Erlang-B: how much concurrent demand a
    16-decoder gateway may be assigned while keeping decoder losses
    under, say, 1 %.
    """
    if not 0 < target_blocking < 1:
        raise ValueError("target blocking must be in (0, 1)")
    lo, hi = 0.0, float(max(servers, 1))
    while erlang_b(hi, servers) < target_blocking:
        hi *= 2.0
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if erlang_b(mid, servers) < target_blocking:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def expected_decoder_loss(
    arrival_rate_hz: float, airtime_s: float, decoders: int
) -> float:
    """Expected fraction of packets dropped for lack of a decoder."""
    return erlang_b(offered_load(arrival_rate_hz, airtime_s), decoders)
